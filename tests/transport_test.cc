// Packetized go-back-N transport tests: protocol-level unit tests (flows
// over raw fabric endpoints) and device-level tests (verbs over
// ConnectOverTransport), with emphasis on the loss-path edge cases:
// duplicate delivery after a spurious retransmit must not double-scatter or
// double-complete, and the dead-peer NAK path must still fire when the loss
// injector eats the original transmission.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "sim/fabric.h"
#include "sim/transport.h"
#include "testbed.h"
#include "workload/experiments.h"

namespace redn::test {
namespace {

using rnic::ConnectOverTransport;
using sim::Nanos;
using sim::Transport;
using sim::TransportConfig;
using verbs::AwaitCqe;
using verbs::Cqe;
using verbs::MakeRead;
using verbs::MakeSend;
using verbs::MakeSendImm;
using verbs::MakeWrite;
using verbs::PostRecv;
using verbs::PostSendNow;

// CI re-runs the randomized-loss tests under ASan+UBSan at several extra
// RNG seeds (scripts/ci.sh sets TRANSPORT_TEST_SEED, an offset added to
// each such test's base seed). Assertions in those tests must be seed
// invariants — recovery completes, replay is bit-stable, SR resends less
// than GBN — not exact counter values.
std::uint64_t SeedOffset() {
  const char* s = std::getenv("TRANSPORT_TEST_SEED");
  return s == nullptr ? 0 : std::strtoull(s, nullptr, 10);
}

// 8 Gbps = 1 ns/byte and small fixed overheads keep the arithmetic legible.
TransportConfig LegibleConfig() {
  TransportConfig cfg;
  cfg.mtu = 1000;
  cfg.header_bytes = 30;
  cfg.ack_bytes = 30;
  cfg.ack_every = 4;
  cfg.ack_delay = 2'000;
  cfg.rto = 20'000;
  return cfg;
}

// --- protocol-level ---------------------------------------------------------

TEST(Transport, SegmentsAndDeliversExactTiming) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  Transport tr(s, f, LegibleConfig());
  const int flow = tr.OpenFlow(a, b);

  std::vector<Nanos> delivered, acked;
  tr.SendMessage(flow, 0, 2500,
                 [&](Nanos t) { delivered.push_back(t); },
                 [&](Nanos t) { acked.push_back(t); });
  s.Run();

  // 2500 B at mtu 1000 = packets of 1000/1000/500 payload (+30 header).
  // TX reservations finish at 1030/2060/2590; each packet then rides
  // prop(100) + prop(100) and queues into b's RX pipe, where the last one
  // clears at 3820. The boundary ACK (30 B) goes straight back:
  // 3820 + 30 + 200 + 30 = 4080.
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 3820);
  ASSERT_EQ(acked.size(), 1u);
  EXPECT_EQ(acked[0], 4080);
  EXPECT_EQ(tr.counters().data_packets, 3u);
  EXPECT_EQ(tr.counters().retransmits, 0u);
  EXPECT_EQ(tr.counters().acks_sent, 1u);  // coalesced: one boundary ACK
  EXPECT_EQ(tr.counters().payload_bytes_delivered, 2500u);
}

TEST(Transport, ZeroByteMessageStillCrossesTheWire) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  Transport tr(s, f, LegibleConfig());
  const int flow = tr.OpenFlow(a, b);
  int delivered = 0;
  tr.SendMessage(flow, 0, 0, [&](Nanos) { ++delivered; });
  s.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(tr.counters().data_packets, 1u);  // header-only packet
}

TEST(Transport, GapTriggersNakGoBackBeforeRto) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  Transport tr(s, f, LegibleConfig());
  const int flow = tr.OpenFlow(a, b);

  tr.DropNextData(1);  // eat the first packet of the message
  std::vector<Nanos> delivered;
  tr.SendMessage(flow, 0, 3000, [&](Nanos t) { delivered.push_back(t); });
  s.Run();

  ASSERT_EQ(delivered.size(), 1u);
  // Recovered well before the 20 us RTO: packets 1-2 arrive out of order,
  // the NAK rewinds the sender, and the full window retransmits.
  EXPECT_LT(delivered[0], LegibleConfig().rto);
  EXPECT_EQ(tr.counters().timeouts, 0u);
  EXPECT_EQ(tr.counters().nak_gobacks, 1u);
  EXPECT_EQ(tr.counters().out_of_order, 2u);
  EXPECT_EQ(tr.counters().retransmits, 3u);  // go-back-N resends 0,1,2
  EXPECT_EQ(tr.counters().dropped_tx, 1u);
}

TEST(Transport, EatenAckCausesSpuriousRetransmitButSingleDelivery) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  Transport tr(s, f, LegibleConfig());
  const int flow = tr.OpenFlow(a, b);

  tr.DropNextAcks(1);  // the boundary ACK evaporates
  int delivered = 0;
  std::vector<Nanos> acked;
  tr.SendMessage(flow, 0, 500, [&](Nanos) { ++delivered; },
                 [&](Nanos t) { acked.push_back(t); });
  s.Run();

  // RTO fires, the packet retransmits, the receiver discards the duplicate
  // and re-ACKs; the message is delivered exactly once and acked late.
  EXPECT_EQ(delivered, 1);
  ASSERT_EQ(acked.size(), 1u);
  EXPECT_GT(acked[0], LegibleConfig().rto);
  EXPECT_EQ(tr.counters().timeouts, 1u);
  EXPECT_EQ(tr.counters().duplicates, 1u);
  EXPECT_EQ(tr.counters().retransmits, 1u);
  EXPECT_EQ(tr.counters().acks_dropped, 1u);
  EXPECT_EQ(tr.counters().messages_delivered, 1u);
  EXPECT_EQ(tr.counters().messages_acked, 1u);
}

TEST(Transport, WindowStallRescuedByDelayedAck) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  TransportConfig cfg = LegibleConfig();
  cfg.window = 2;     // stalls mid-message
  cfg.ack_every = 8;  // never reaches the count threshold mid-message
  Transport tr(s, f, cfg);
  const int flow = tr.OpenFlow(a, b);
  int delivered = 0;
  tr.SendMessage(flow, 0, 5000, [&](Nanos) { ++delivered; });
  s.Run();
  // Interior packets only ever ACK via the delayed-ACK backstop, so the
  // 5-packet message needs it repeatedly to slide the 2-packet window.
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(tr.counters().acks_sent, 2u);
  EXPECT_EQ(tr.counters().retransmits, 0u);
}

TEST(Transport, CorruptionCountsAndRecovers) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  TransportConfig cfg = LegibleConfig();
  Transport tr(s, f, cfg);
  tr.SetLinkFaults(b, /*loss=*/0.0, /*corrupt=*/0.4);
  const int flow = tr.OpenFlow(a, b);
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    tr.SendMessage(flow, 0, 3000, [&](Nanos) { ++delivered; });
  }
  s.Run();
  EXPECT_EQ(delivered, 20);
  EXPECT_GT(tr.counters().corrupted, 0u);
  EXPECT_GT(tr.counters().retransmits, 0u);
}

TEST(Transport, FlowCountersIsolatePerFlow) {
  // The per-flow snapshot carves the global totals by flow id, legacy path
  // included: traffic on one flow must not bleed into another's counters.
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  const int c = f.Attach({8.0, 100});
  Transport tr(s, f, LegibleConfig());
  const int ab = tr.OpenFlow(a, b);
  const int ac = tr.OpenFlow(a, c);
  int delivered = 0;
  tr.SendMessage(ab, 0, 2500, [&](Nanos) { ++delivered; });  // 3 packets
  tr.SendMessage(ac, 0, 500, [&](Nanos) { ++delivered; });   // 1 packet
  s.Run();
  EXPECT_EQ(delivered, 2);
  const auto fab = tr.FlowCounters(ab);
  const auto fac = tr.FlowCounters(ac);
  EXPECT_EQ(fab.data_packets, 3u);
  EXPECT_EQ(fac.data_packets, 1u);
  EXPECT_EQ(fab.payload_bytes_delivered, 2500u);
  EXPECT_EQ(fac.payload_bytes_delivered, 500u);
  EXPECT_EQ(fab.messages_delivered, 1u);
  EXPECT_EQ(fab.retransmits, 0u);
  // The per-flow pieces sum to the global snapshot.
  EXPECT_EQ(fab.data_packets + fac.data_packets,
            tr.counters().data_packets);
  EXPECT_EQ(fab.acks_sent + fac.acks_sent, tr.counters().acks_sent);
}

TEST(Transport, SameSeedReplaysBitIdentically) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s;
    sim::Fabric f;
    const int a = f.Attach({8.0, 100});
    const int b = f.Attach({8.0, 100});
    TransportConfig cfg = LegibleConfig();
    cfg.loss = 0.1;
    cfg.seed = seed;
    Transport tr(s, f, cfg);
    const int flow = tr.OpenFlow(a, b);
    std::vector<Nanos> times;
    for (int i = 0; i < 30; ++i) {
      tr.SendMessage(flow, 0, 2500, [&](Nanos t) { times.push_back(t); });
    }
    s.Run();
    times.push_back(static_cast<Nanos>(tr.counters().retransmits));
    times.push_back(static_cast<Nanos>(tr.counters().acks_sent));
    return times;
  };
  const auto r1 = run(42);
  const auto r2 = run(42);
  EXPECT_EQ(r1, r2);
  // A different seed must actually change the loss pattern.
  const auto r3 = run(43);
  EXPECT_NE(r1, r3);
}

// --- device-level -----------------------------------------------------------

class TransportBed : public ::testing::Test {
 protected:
  TransportBed() : TransportBed(DeviceConfig()) {}
  explicit TransportBed(TransportConfig cfg) : tr(bed.sim, fabric, cfg) {
    bed.client.AttachPort(0, fabric, {25.0, 125});
    bed.server.AttachPort(0, fabric, {25.0, 125});
  }

  static TransportConfig DeviceConfig() {
    TransportConfig cfg;
    cfg.mtu = 1024;
    cfg.rto = 20'000;
    return cfg;
  }

  rnic::QueuePair* MakeQp(RnicDevice& dev) {
    QpConfig c;
    c.send_cq = dev.CreateCq();
    c.recv_cq = dev.CreateCq();
    return dev.CreateQp(c);
  }

  std::pair<rnic::QueuePair*, rnic::QueuePair*> ConnectedPair() {
    rnic::QueuePair* cqp = MakeQp(bed.client);
    rnic::QueuePair* sqp = MakeQp(bed.server);
    ConnectOverTransport(cqp, sqp, tr);
    return {cqp, sqp};
  }

  TestBed bed;
  sim::Fabric fabric;
  Transport tr;
};

TEST_F(TransportBed, WriteSegmentsDeliversAndCompletes) {
  auto [cqp, sqp] = ConnectedPair();
  constexpr std::size_t kLen = 8192;
  Buffer src = bed.Alloc(bed.client, kLen);
  Buffer dst = bed.Alloc(bed.server, kLen);
  src.Fill(0xab, kLen);
  PostSendNow(cqp, MakeWrite(src.addr(), kLen, src.lkey(), dst.addr(),
                             dst.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(cqe.byte_len, kLen);
  EXPECT_EQ(std::memcmp(src.bytes(), dst.bytes(), kLen), 0);
  // 8 KiB at mtu 1024 = 8 packets, and the completion waited for the
  // transport-level cumulative ACK.
  EXPECT_EQ(tr.counters().data_packets, 8u);
  EXPECT_GE(tr.counters().acks_sent, 1u);
  EXPECT_EQ(tr.counters().messages_acked, 1u);
}

TEST_F(TransportBed, SendImmCarriesImmAndPayloadThroughLoss) {
  auto [cqp, sqp] = ConnectedPair();
  constexpr std::size_t kLen = 3000;
  Buffer src = bed.Alloc(bed.client, kLen);
  Buffer dst = bed.Alloc(bed.server, kLen);
  src.Fill(0x5c, kLen);
  verbs::RecvWr rwr;
  rwr.local_addr = dst.addr();
  rwr.length = kLen;
  rwr.lkey = dst.lkey();
  PostRecv(sqp, rwr);
  tr.DropNextData(1);  // first payload packet eaten; go-back-N recovers
  PostSendNow(cqp, MakeSendImm(src.addr(), kLen, src.lkey(), 0xbeef));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_TRUE(cqe.has_imm);
  EXPECT_EQ(cqe.imm, 0xbeefu);
  EXPECT_EQ(cqe.byte_len, kLen);
  EXPECT_EQ(std::memcmp(src.bytes(), dst.bytes(), kLen), 0);
  EXPECT_GT(tr.counters().retransmits, 0u);
}

TEST_F(TransportBed, SpuriousRetransmitDoesNotDoubleScatterOrDoubleComplete) {
  auto [cqp, sqp] = ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 256);
  Buffer dst = bed.Alloc(bed.server, 512);
  src.SetU64(0, 0x1111);
  // Two RECVs armed: a double delivery would consume the second one and
  // scatter into its (different) buffer.
  verbs::RecvWr r1;
  r1.local_addr = dst.addr();
  r1.length = 256;
  r1.lkey = dst.lkey();
  PostRecv(sqp, r1);
  verbs::RecvWr r2;
  r2.local_addr = dst.addr() + 256;
  r2.length = 256;
  r2.lkey = dst.lkey();
  PostRecv(sqp, r2);

  tr.DropNextAcks(1);  // force the spurious retransmit of the SEND
  PostSendNow(cqp, MakeSend(src.addr(), 256, src.lkey()));

  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  // The send CQE arrives only after the RTO-retransmit round recovers the
  // eaten ACK.
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_GT(bed.sim.now(), DeviceConfig().rto);
  bed.sim.Run();  // drain every straggler event

  // Exactly one RECV consumed, one scatter, one completion per side.
  EXPECT_GT(tr.counters().duplicates, 0u);  // the scenario really happened
  EXPECT_EQ(sqp->rq.consumed, 1u);
  EXPECT_EQ(dst.U64(0), 0x1111u);
  EXPECT_EQ(dst.U64(32), 0u);  // second RECV's buffer untouched
  EXPECT_EQ(bed.server.PollCq(sqp->recv_cq, 1, &cqe), 0);
  EXPECT_EQ(bed.client.PollCq(cqp->send_cq, 1, &cqe), 0);
}

TEST_F(TransportBed, ReadRecoversFromLostRequest) {
  auto [cqp, sqp] = ConnectedPair();
  Buffer local = bed.Alloc(bed.client, 64);
  Buffer remote = bed.Alloc(bed.server, 64);
  remote.SetU64(0, 0xd00d);
  tr.DropNextData(1);  // the READ request itself is eaten
  PostSendNow(cqp, MakeRead(local.addr(), 8, local.lkey(), remote.addr(),
                            remote.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(local.U64(0), 0xd00du);
  // Only the RTO can recover a solo lost packet (no later packet to NAK).
  EXPECT_GE(bed.sim.now(), DeviceConfig().rto);
  EXPECT_EQ(tr.counters().timeouts, 1u);
}

TEST_F(TransportBed, DeadPeerNaksEvenWhenLossAteTheOriginalRequest) {
  auto [cqp, sqp] = ConnectedPair();
  Buffer local = bed.Alloc(bed.client, 64);
  Buffer remote = bed.Alloc(bed.server, 64);
  tr.DropNextData(1);  // the original READ request never arrives...
  PostSendNow(cqp, MakeRead(local.addr(), 8, local.lkey(), remote.addr(),
                            remote.rkey()));
  // ...and the server dies before the retransmission lands.
  bed.sim.At(5'000, [&] { bed.server.KillProcessResources(sqp->owner_pid); });
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(5)))
      << "requester hung instead of receiving the dead-peer NAK";
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError);
  EXPECT_TRUE(cqp->sq.error);  // the QP is flushed, like every NAK path
}

TEST_F(TransportBed, ResetOfHealthyQpWithInflightWrDiscardsSilentlyAndRearms) {
  auto [cqp, sqp] = ConnectedPair();
  constexpr std::size_t kLen = 2048;
  Buffer src = bed.Alloc(bed.client, kLen);
  Buffer dst = bed.Alloc(bed.server, kLen);
  src.Fill(0x44, kLen);

  // Blackhole the server's link so the WRITE stays in flight (unacked; no
  // retry budget configured, so it would retry forever), then reset the
  // *healthy* client QP mid-flight. ibv_modify_qp ->RESET discards such
  // work silently: no CQE, no ERROR transition — the flush fired by the
  // flow teardown must not re-latch the error state the reset just cleared.
  const int server_ep = bed.server.fabric_endpoint(0);
  tr.SetLinkFaults(server_ep, /*loss=*/1.0, /*corrupt=*/0.0);
  PostSendNow(cqp, MakeWrite(src.addr(), kLen, src.lkey(), dst.addr(),
                             dst.rkey()));
  bed.sim.RunUntil(100'000);  // a few RTO rounds in; the WR is still queued

  bed.client.ModifyQp(cqp, rnic::QpState::kReset);
  bed.client.ModifyQp(cqp, rnic::QpState::kInit);
  bed.client.ModifyQp(cqp, rnic::QpState::kRtr);
  bed.client.ModifyQp(cqp, rnic::QpState::kRts);
  EXPECT_EQ(cqp->state, rnic::QpState::kRts);
  EXPECT_FALSE(cqp->sq.error);
  EXPECT_FALSE(cqp->rq.error);
  EXPECT_EQ(bed.client.counters().qp_errors, 0u);

  // Heal the link: the re-armed QP moves fresh traffic, and the discarded
  // WRITE never surfaces a CQE — the success below is the only completion.
  tr.SetLinkFaults(server_ep, 0.0, 0.0);
  src.SetU64(0, 0xabcd);
  PostSendNow(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(),
                             dst.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(dst.U64(0), 0xabcdu);
  bed.sim.RunUntil(bed.sim.now() + 200'000);  // drain any straggler events
  EXPECT_EQ(bed.client.counters().error_completions, 0u);
  EXPECT_EQ(bed.client.PollCq(cqp->send_cq, 1, &cqe), 0);
}

// --- reliability engine: selective repeat, RNR, budgets, QP recovery --------

TEST(TransportSr, SingleLossRetransmitsOnePacketWhereGoBackNRewinds) {
  // Same deterministic loss (first packet of a 3-packet message eaten) under
  // both modes: go-back-N resends the whole window, selective repeat resends
  // exactly the hole named by the SACK.
  auto run = [](sim::TransportMode mode) {
    sim::Simulator s;
    sim::Fabric f;
    const int a = f.Attach({8.0, 100});
    const int b = f.Attach({8.0, 100});
    TransportConfig cfg = LegibleConfig();
    cfg.mode = mode;
    Transport tr(s, f, cfg);
    const int flow = tr.OpenFlow(a, b);
    tr.DropNextData(1);
    std::vector<Nanos> delivered;
    tr.SendMessage(flow, 0, 3000, [&](Nanos t) { delivered.push_back(t); });
    s.Run();
    EXPECT_EQ(delivered.size(), 1u);
    EXPECT_LT(delivered[0], cfg.rto);  // NAK recovery, no timeout in either
    EXPECT_EQ(tr.counters().timeouts, 0u);
    return tr.counters();
  };
  const auto gbn = run(sim::TransportMode::kGoBackN);
  EXPECT_EQ(gbn.retransmits, 3u);
  EXPECT_EQ(gbn.nak_gobacks, 1u);
  EXPECT_EQ(gbn.sack_retransmits, 0u);
  const auto sr = run(sim::TransportMode::kSelectiveRepeat);
  EXPECT_EQ(sr.retransmits, 1u);
  EXPECT_EQ(sr.sack_retransmits, 1u);
  EXPECT_EQ(sr.nak_gobacks, 0u);
  EXPECT_GE(sr.sacks_sent, 1u);
}

TEST(TransportSr, OutRetransmitsGoBackNUnderRandomLossSameSeed) {
  auto run = [](sim::TransportMode mode) {
    sim::Simulator s;
    sim::Fabric f;
    const int a = f.Attach({8.0, 100});
    const int b = f.Attach({8.0, 100});
    TransportConfig cfg = LegibleConfig();
    cfg.mode = mode;
    cfg.loss = 0.05;
    cfg.seed = 42 + SeedOffset();
    Transport tr(s, f, cfg);
    const int flow = tr.OpenFlow(a, b);
    int delivered = 0;
    for (int i = 0; i < 40; ++i) {
      tr.SendMessage(flow, 0, 2500, [&](Nanos) { ++delivered; });
    }
    s.Run();
    EXPECT_EQ(delivered, 40);
    return tr.counters();
  };
  const auto gbn = run(sim::TransportMode::kGoBackN);
  const auto sr = run(sim::TransportMode::kSelectiveRepeat);
  // Every loss event costs go-back-N a window rewind but selective repeat
  // only the holes, so the same seed recovers with strictly fewer resends.
  EXPECT_LT(sr.retransmits, gbn.retransmits);
  EXPECT_GT(sr.sack_retransmits, 0u);
  // Same-seed bit-stability of the new mode.
  const auto sr2 = run(sim::TransportMode::kSelectiveRepeat);
  EXPECT_EQ(sr.retransmits, sr2.retransmits);
  EXPECT_EQ(sr.sack_retransmits, sr2.sack_retransmits);
  EXPECT_EQ(sr.wire_bytes_sent, sr2.wire_bytes_sent);
  EXPECT_EQ(sr.sacks_sent, sr2.sacks_sent);
}

TEST(TransportRnr, NakBacksOffThenDeliversWhenReceiverTurnsReady) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  TransportConfig cfg = LegibleConfig();
  cfg.rnr_retry_count = 7;
  cfg.min_rnr_timer = 1;  // 8.2 us base backoff keeps the test quick
  Transport tr(s, f, cfg);
  const int flow = tr.OpenFlow(a, b);

  int rejects = 2;
  std::vector<Nanos> delivered, acked;
  Transport::MessageOps ops;
  ops.rnr_probe = [&](Nanos) { return rejects-- <= 0; };
  ops.on_deliver = [&](Nanos t) { delivered.push_back(t); };
  ops.on_acked = [&](Nanos t) { acked.push_back(t); };
  tr.SendMessageEx(flow, 0, 500, std::move(ops));
  s.Run();

  ASSERT_EQ(delivered.size(), 1u);
  ASSERT_EQ(acked.size(), 1u);
  // Two RNR rounds: 4096<<1 then doubled — delivery waited out both.
  EXPECT_GT(delivered[0], Nanos{8192 + 16384});
  EXPECT_EQ(tr.counters().rnr_naks, 2u);
  EXPECT_EQ(tr.counters().rnr_backoffs, 2u);
  EXPECT_EQ(tr.counters().messages_delivered, 1u);
  EXPECT_EQ(tr.counters().rnr_exhausted, 0u);
}

TEST(TransportRnr, BudgetExhaustionFailsFlowFlushesQueueAndResetRevives) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  TransportConfig cfg = LegibleConfig();
  cfg.rnr_retry_count = 2;
  cfg.min_rnr_timer = 1;
  Transport tr(s, f, cfg);
  const int flow = tr.OpenFlow(a, b);

  bool ready = false;  // receiver never posts until after the reset
  std::vector<sim::MsgFailure> failures;
  auto make_ops = [&] {
    Transport::MessageOps ops;
    ops.rnr_probe = [&](Nanos) { return ready; };
    ops.on_deliver = [&](Nanos) { FAIL() << "delivered unready message"; };
    ops.on_failed = [&](Nanos, sim::MsgFailure why) {
      failures.push_back(why);
    };
    return ops;
  };
  tr.SendMessageEx(flow, 0, 500, make_ops());
  tr.SendMessageEx(flow, 0, 500, make_ops());  // queued behind the failure
  s.Run();

  // Budget 2: two backoffs taken, the third NAK kills the flow. The head
  // message carries the reason, the queued one flushes.
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0], sim::MsgFailure::kRnrRetryExceeded);
  EXPECT_EQ(failures[1], sim::MsgFailure::kFlushed);
  EXPECT_TRUE(tr.FlowErrored(flow));
  EXPECT_EQ(tr.counters().rnr_exhausted, 1u);
  EXPECT_EQ(tr.counters().rnr_backoffs, 2u);
  EXPECT_EQ(tr.counters().messages_failed, 2u);

  // Errored flow: a later send fails asynchronously without touching wire.
  tr.SendMessageEx(flow, 0, 500, make_ops());
  s.Run();
  ASSERT_EQ(failures.size(), 3u);
  EXPECT_EQ(failures[2], sim::MsgFailure::kFlushed);

  // ResetFlow re-arms PSN space; with the receiver now ready it delivers.
  tr.ResetFlow(flow);
  EXPECT_FALSE(tr.FlowErrored(flow));
  ready = true;
  int delivered = 0;
  Transport::MessageOps ok;
  ok.rnr_probe = [&](Nanos) { return ready; };
  ok.on_deliver = [&](Nanos) { ++delivered; };
  tr.SendMessageEx(flow, 0, 500, std::move(ok));
  s.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(tr.counters().flow_resets, 1u);
}

TEST(TransportRnr, MidMessageAckedIntoBodyThenRnrRewindStillRecovers) {
  // Regression: ack_every/delayed ACKs land mid-message (advancing the
  // sender's base into the 8-segment SEND) before the rnr_probe rejects it
  // at the boundary; the RNR rewind then drops the receiver's expected to
  // PSN 0, *below* the acked base. The sender must reclaim [0, base) as
  // unacked — every retransmit path clamps at base, so without the rewind
  // the receiver waits forever on packets the sender believes are acked
  // and the flow dies by RTO budget for a transient RNR condition.
  auto run = [](sim::TransportMode mode) {
    sim::Simulator s;
    sim::Fabric f;
    const int a = f.Attach({8.0, 100});
    const int b = f.Attach({8.0, 100});
    TransportConfig cfg = LegibleConfig();
    cfg.mode = mode;
    cfg.rnr_retry_count = 7;
    cfg.min_rnr_timer = 1;
    cfg.retry_count = 3;  // a regression fails fast here instead of hanging
    Transport tr(s, f, cfg);
    const int flow = tr.OpenFlow(a, b);

    int rejects = 1;
    std::vector<Nanos> delivered, acked;
    std::vector<sim::MsgFailure> failures;
    Transport::MessageOps ops;
    ops.rnr_probe = [&](Nanos) { return rejects-- <= 0; };
    ops.on_deliver = [&](Nanos t) { delivered.push_back(t); };
    ops.on_acked = [&](Nanos t) { acked.push_back(t); };
    ops.on_failed = [&](Nanos, sim::MsgFailure why) {
      failures.push_back(why);
    };
    tr.SendMessageEx(flow, 0, 8000, std::move(ops));  // 8 segments
    s.Run();

    EXPECT_TRUE(failures.empty());
    EXPECT_EQ(delivered.size(), 1u);
    EXPECT_EQ(acked.size(), 1u);
    EXPECT_EQ(tr.counters().rnr_naks, 1u);
    EXPECT_EQ(tr.counters().rnr_backoffs, 1u);
    EXPECT_EQ(tr.counters().retry_exhausted, 0u);
    EXPECT_EQ(tr.counters().rnr_exhausted, 0u);
    return tr.counters();
  };
  // Go-back-N re-sends the whole message after the backoff; selective
  // repeat re-held segments 1-7 at the receiver and the NAK's SACK ranges
  // taught the sender so, costing exactly one retransmission (PSN 0).
  const auto gbn = run(sim::TransportMode::kGoBackN);
  EXPECT_EQ(gbn.retransmits, 8u);
  const auto sr = run(sim::TransportMode::kSelectiveRepeat);
  EXPECT_EQ(sr.retransmits, 1u);
}

TEST(Transport, TimeoutExponentSetsBaseRtoAndDoublesPerConsecutiveFire) {
  sim::Simulator s;
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  TransportConfig cfg = LegibleConfig();
  cfg.timeout_exp = 2;  // base RTO 4096 << 2 = 16384 ns, overrides cfg.rto
  Transport tr(s, f, cfg);
  const int flow = tr.OpenFlow(a, b);
  tr.DropNextData(1);
  std::vector<Nanos> acked;
  // Single-packet message: no later packet can NAK, only the RTO recovers.
  tr.SendMessage(flow, 0, 500, [](Nanos) {}, [&](Nanos t) {
    acked.push_back(t);
  });
  s.Run();
  ASSERT_EQ(acked.size(), 1u);
  // First RTO fires one 16384 ns base interval after the send completes —
  // below the 20 us legacy cfg.rto, proving the exponent is in charge.
  EXPECT_GT(acked[0], Nanos{16'384});
  EXPECT_LT(acked[0], Nanos{20'000});
  EXPECT_EQ(tr.counters().rto_fires, 1u);
  EXPECT_EQ(tr.counters().timeouts, 1u);
}

// Device-level reliability bed: selective repeat + finite budgets.
class ReliabilityBed : public TransportBed {
 protected:
  ReliabilityBed() : TransportBed(ReliableConfig()) {}

  static TransportConfig ReliableConfig() {
    TransportConfig cfg = DeviceConfig();
    cfg.mode = sim::TransportMode::kSelectiveRepeat;
    cfg.retry_count = 2;       // third consecutive RTO kills the flow
    cfg.rnr_retry_count = 2;   // third consecutive RNR NAK kills the flow
    cfg.min_rnr_timer = 1;
    return cfg;
  }
};

TEST_F(ReliabilityBed, RetryExhaustionErrorsFlushesAndRearmedQpResumes) {
  auto [cqp, sqp] = ConnectedPair();
  constexpr std::size_t kLen = 4096;
  Buffer src = bed.Alloc(bed.client, kLen);
  Buffer dst = bed.Alloc(bed.server, kLen);
  src.Fill(0x77, kLen);

  // Blackhole the server's link: every retransmission round dies too.
  const int server_ep = bed.server.fabric_endpoint(0);
  tr.SetLinkFaults(server_ep, /*loss=*/1.0, /*corrupt=*/0.0);
  PostSendNow(cqp, MakeWrite(src.addr(), kLen, src.lkey(), dst.addr(),
                             dst.rkey()));
  PostSendNow(cqp, MakeWrite(src.addr(), kLen, src.lkey(), dst.addr(),
                             dst.rkey()));  // queued behind the failure

  // The in-flight WR surfaces the exhaustion reason, the queued one the
  // flush — in that order, and without hanging.
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRetryExcError);
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kWrFlushError);
  EXPECT_EQ(cqp->state, rnic::QpState::kError);
  EXPECT_TRUE(cqp->sq.error);
  EXPECT_EQ(bed.client.counters().qp_errors, 1u);
  EXPECT_GE(tr.counters().retry_exhausted, 1u);

  // Heal, cycle reset -> init -> RTR -> RTS on both ends, go again.
  tr.SetLinkFaults(server_ep, 0.0, 0.0);
  for (rnic::QueuePair* qp : {cqp, sqp}) {
    rnic::RnicDevice& dev = qp == cqp ? bed.client : bed.server;
    dev.ModifyQp(qp, rnic::QpState::kReset);
    dev.ModifyQp(qp, rnic::QpState::kInit);
    dev.ModifyQp(qp, rnic::QpState::kRtr);
    dev.ModifyQp(qp, rnic::QpState::kRts);
  }
  EXPECT_EQ(bed.client.counters().qp_rearms, 1u);
  EXPECT_EQ(cqp->state, rnic::QpState::kRts);
  EXPECT_FALSE(cqp->sq.error);

  PostSendNow(cqp, MakeWrite(src.addr(), kLen, src.lkey(), dst.addr(),
                             dst.rkey()));
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(std::memcmp(src.bytes(), dst.bytes(), kLen), 0);
}

TEST_F(ReliabilityBed, LostReadRequestExhaustsBudgetInsteadOfHanging) {
  auto [cqp, sqp] = ConnectedPair();
  Buffer local = bed.Alloc(bed.client, 64);
  Buffer remote = bed.Alloc(bed.server, 64);
  remote.SetU64(0, 0xd00d);
  // Unlike ReadRecoversFromLostRequest, the link stays dead: the 16-byte
  // READ request burns its whole retry budget and must surface the error
  // on the requester's CQ, not hang the closed loop.
  tr.SetLinkFaults(bed.server.fabric_endpoint(0), 1.0, 0.0);
  PostSendNow(cqp, MakeRead(local.addr(), 8, local.lkey(), remote.addr(),
                            remote.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)))
      << "requester hung instead of exhausting the retry budget";
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRetryExcError);
  EXPECT_EQ(cqp->state, rnic::QpState::kError);
  EXPECT_EQ(local.U64(0), 0u);  // nothing scattered
}

TEST_F(ReliabilityBed, StalledReceiverRnrNaksThenLateRecvDelivers) {
  auto [cqp, sqp] = ConnectedPair();
  constexpr std::size_t kLen = 256;
  Buffer src = bed.Alloc(bed.client, kLen);
  Buffer dst = bed.Alloc(bed.server, kLen);
  src.SetU64(0, 0xfeed);
  verbs::RecvWr rwr;
  rwr.local_addr = dst.addr();
  rwr.length = kLen;
  rwr.lkey = dst.lkey();
  PostRecv(sqp, rwr);

  // The RECV is posted but the receiver reports not-ready twice: two RNR
  // NAK + backoff rounds, then the third attempt consumes it normally.
  bed.server.StallRecvsFor(sqp, 2);
  PostSendNow(cqp, MakeSend(src.addr(), kLen, src.lkey()));

  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(dst.U64(0), 0xfeedu);
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_GT(bed.sim.now(), Nanos{8192 + 16384});  // waited out both backoffs
  EXPECT_EQ(tr.counters().rnr_naks, 2u);
  EXPECT_EQ(tr.counters().rnr_backoffs, 2u);
  EXPECT_EQ(bed.server.counters().rnr_naks, 2u);
  EXPECT_EQ(sqp->rq.consumed, 1u);
}

TEST_F(ReliabilityBed, MultiSegmentSendSurvivesRnrStallAfterMidMessageAck) {
  auto [cqp, sqp] = ConnectedPair();
  constexpr std::size_t kLen = 8192;  // 8 segments at mtu 1024, ack_every 4
  Buffer src = bed.Alloc(bed.client, kLen);
  Buffer dst = bed.Alloc(bed.server, kLen);
  src.Fill(0x3d, kLen);
  verbs::RecvWr rwr;
  rwr.local_addr = dst.addr();
  rwr.length = kLen;
  rwr.lkey = dst.lkey();
  PostRecv(sqp, rwr);

  // Mid-message cumulative ACKs advance the sender's base into the SEND
  // before the stalled probe RNR-NAKs it at the boundary; recovery must
  // retransmit below that base instead of burning the RTO budget (2 here —
  // a regression surfaces kRetryExcError instead of hanging).
  bed.server.StallRecvsFor(sqp, 1);
  PostSendNow(cqp, MakeSend(src.addr(), kLen, src.lkey()));

  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(cqe.byte_len, kLen);
  EXPECT_EQ(std::memcmp(src.bytes(), dst.bytes(), kLen), 0);
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(cqp->state, rnic::QpState::kRts);
  EXPECT_EQ(tr.counters().rnr_backoffs, 1u);
  EXPECT_EQ(tr.counters().retry_exhausted, 0u);
  EXPECT_EQ(bed.server.counters().rnr_naks, 1u);
}

TEST_F(ReliabilityBed, RnrBudgetExhaustionSurfacesRnrRetryExcError) {
  auto [cqp, sqp] = ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 256);
  Buffer dst = bed.Alloc(bed.server, 256);
  verbs::RecvWr rwr;
  rwr.local_addr = dst.addr();
  rwr.length = 256;
  rwr.lkey = dst.lkey();
  PostRecv(sqp, rwr);
  bed.server.StallRecvsFor(sqp, 3);  // one more than the budget tolerates
  PostSendNow(cqp, MakeSend(src.addr(), 256, src.lkey()));

  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRnrRetryExcError);
  EXPECT_EQ(cqp->state, rnic::QpState::kError);
  EXPECT_GE(tr.counters().rnr_exhausted, 1u);

  // Recovery: cycle both QPs (the reset clears the stall injector and
  // discards the stranded RECV), repost it, and the retried SEND lands.
  for (rnic::QueuePair* qp : {cqp, sqp}) {
    rnic::RnicDevice& dev = qp == cqp ? bed.client : bed.server;
    dev.ModifyQp(qp, rnic::QpState::kReset);
    dev.ModifyQp(qp, rnic::QpState::kInit);
    dev.ModifyQp(qp, rnic::QpState::kRtr);
    dev.ModifyQp(qp, rnic::QpState::kRts);
  }
  PostRecv(sqp, rwr);
  src.SetU64(0, 0xcafe);
  PostSendNow(cqp, MakeSend(src.addr(), 256, src.lkey()));
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(dst.U64(0), 0xcafeu);
}

TEST_F(ReliabilityBed, ResetDuringRnrBackoffPauseNeitherResurrectsNorMisfires) {
  auto [cqp, sqp] = ConnectedPair();
  constexpr std::size_t kLen = 256;
  Buffer src = bed.Alloc(bed.client, kLen);
  Buffer dst = bed.Alloc(bed.server, kLen);
  verbs::RecvWr rwr;
  rwr.local_addr = dst.addr();
  rwr.length = kLen;
  rwr.lkey = dst.lkey();
  PostRecv(sqp, rwr);
  bed.server.StallRecvsFor(sqp, 2);
  PostSendNow(cqp, MakeSend(src.addr(), kLen, src.lkey()));

  // Run just past the first RNR NAK: the sender is parked in the 8192 ns
  // backoff pause (min_rnr_timer = 1) with its resume timer armed.
  bed.sim.RunUntil(bed.sim.now() + 4'000);
  EXPECT_EQ(tr.counters().rnr_naks, 1u);
  EXPECT_EQ(tr.counters().rnr_backoffs, 1u);
  ASSERT_EQ(cqp->state, rnic::QpState::kRts);  // budget not exhausted

  // Reset both ends mid-pause. The healthy-QP reset abandons the paused WR
  // silently; the stale resume timer must not resurrect the old flow.
  for (rnic::QueuePair* qp : {cqp, sqp}) {
    rnic::RnicDevice& dev = qp == cqp ? bed.client : bed.server;
    dev.ModifyQp(qp, rnic::QpState::kReset);
    dev.ModifyQp(qp, rnic::QpState::kInit);
    dev.ModifyQp(qp, rnic::QpState::kRtr);
    dev.ModifyQp(qp, rnic::QpState::kRts);
  }
  // Give the dead timer (due at ~8.8 us) ample room to misbehave.
  bed.sim.RunUntil(bed.sim.now() + sim::Millis(1));
  Cqe cqe;
  EXPECT_EQ(bed.client.PollCq(cqp->send_cq, 1, &cqe), 0);  // no stray CQE
  EXPECT_EQ(bed.server.PollCq(sqp->recv_cq, 1, &cqe), 0);
  EXPECT_EQ(cqp->state, rnic::QpState::kRts);
  EXPECT_EQ(tr.counters().rnr_naks, 1u);       // timer stayed dead
  EXPECT_EQ(tr.counters().rnr_backoffs, 1u);
  EXPECT_EQ(tr.counters().rnr_exhausted, 0u);
  EXPECT_EQ(bed.client.counters().qp_errors, 0u);

  // The re-armed pair carries fresh traffic: the reset cleared the stall
  // injector, so this round completes without another NAK.
  PostRecv(sqp, rwr);
  src.SetU64(0, 0xbeef);
  PostSendNow(cqp, MakeSend(src.addr(), kLen, src.lkey()));
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(dst.U64(0), 0xbeefu);
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe,
                       sim::Millis(50)));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(bed.client.PollCq(cqp->send_cq, 1, &cqe), 0);
  EXPECT_EQ(tr.counters().rnr_naks, 1u);
}

TEST(TransportScale, ReliabilityKnobsWithoutPacketizedThrow) {
  workload::FabricScaleConfig cfg;
  cfg.clients = 1;
  cfg.gets_per_client = 1;
  cfg.selective_repeat = true;  // packetized left false
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
  cfg.selective_repeat = false;
  cfg.retry_count = 2;
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
  cfg.retry_count = 0;
  workload::FaultEntry fe;
  fe.client = 0;
  fe.down_at = 1'000;
  cfg.faults.entries.push_back(fe);
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
  // The same plan on the packetized transport is accepted (entry validation
  // still applies: a crash entry or a bad client index stays an error).
  cfg.packetized = true;
  workload::FabricScaleConfig bad = cfg;
  bad.faults.entries[0].kind = workload::FaultKind::kCrash;
  EXPECT_THROW(workload::RunFabricScale(bad), std::invalid_argument);
  bad = cfg;
  bad.faults.entries[0].client = 7;  // only 1 client configured
  EXPECT_THROW(workload::RunFabricScale(bad), std::invalid_argument);
}

TEST(TransportScale, LossyRunFabricScaleIsDeterministicAndDegrades) {
  workload::FabricScaleConfig cfg;
  cfg.clients = 2;
  cfg.gets_per_client = 20;
  cfg.value_len = 8192;
  cfg.keys = 64;
  cfg.packetized = true;
  cfg.loss = 0.02;
  const auto r1 = workload::RunFabricScale(cfg);
  EXPECT_EQ(r1.gets, 40u);  // go-back-N answered every get despite loss
  EXPECT_GT(r1.retransmits, 0u);
  const auto r2 = workload::RunFabricScale(cfg);
  EXPECT_EQ(r1.duration_us, r2.duration_us);
  EXPECT_EQ(r1.avg_us, r2.avg_us);
  EXPECT_EQ(r1.p99_us, r2.p99_us);
  EXPECT_EQ(r1.retransmits, r2.retransmits);
  EXPECT_EQ(r1.goodput_gbps, r2.goodput_gbps);
  // The same workload without loss is strictly faster and retransmit-free.
  cfg.loss = 0.0;
  const auto clean = workload::RunFabricScale(cfg);
  EXPECT_EQ(clean.gets, 40u);
  EXPECT_EQ(clean.retransmits, 0u);
  EXPECT_EQ(clean.timeouts, 0u);
  EXPECT_GT(r1.duration_us, clean.duration_us);
  EXPECT_GE(r1.p99_us, clean.p99_us);
}

TEST(TransportScale, KillAndReconnectErrorsRearmsAndStillAnswersEveryGet) {
  workload::FabricScaleConfig cfg;
  cfg.clients = 3;
  cfg.gets_per_client = 30;
  cfg.value_len = 8192;
  cfg.keys = 64;
  cfg.packetized = true;
  cfg.loss = 0.01;
  cfg.selective_repeat = true;
  cfg.retry_count = 2;      // third consecutive RTO errors the QP
  cfg.rnr_retry_count = 4;
  cfg.timeout_exp = 2;      // 16.4 us base RTO: budgets die inside the window
  workload::FaultEntry fe;
  fe.client = 0;
  fe.kind = workload::FaultKind::kBlackhole;
  fe.down_at = 50'000;
  fe.up_at = 250'000;
  cfg.faults.entries.push_back(fe);
  cfg.transport_seed += SeedOffset();
  const auto r1 = workload::RunFabricScale(cfg);
  // The run completes bounded — client 0's dead window costs wall time, not
  // gets: its failed request is reissued after the reset->RTS re-arm.
  EXPECT_EQ(r1.gets, 90u);
  EXPECT_GT(r1.qp_errors, 0u);
  EXPECT_GT(r1.qp_rearms, 0u);
  if (SeedOffset() == 0) {
    // Flushed RECVs surfaced as error CQEs, not counted as gets. Only
    // checked at the base seed: whether the *client-side* QP errors (vs
    // just the server side) depends on what was unacked at partition time.
    EXPECT_GT(r1.error_cqes, 0u);
  }
  EXPECT_GE(r1.flow_resets, 2u);  // both directions of client 0's QP pair
  EXPECT_GT(r1.rto_fires, 0u);
  // Same-seed bit-stability across every new fault hook.
  const auto r2 = workload::RunFabricScale(cfg);
  EXPECT_EQ(r1.duration_us, r2.duration_us);
  EXPECT_EQ(r1.avg_us, r2.avg_us);
  EXPECT_EQ(r1.p99_us, r2.p99_us);
  EXPECT_EQ(r1.retransmits, r2.retransmits);
  EXPECT_EQ(r1.sack_retransmits, r2.sack_retransmits);
  EXPECT_EQ(r1.rto_fires, r2.rto_fires);
  EXPECT_EQ(r1.goodput_gbps, r2.goodput_gbps);
  EXPECT_EQ(r1.error_cqes, r2.error_cqes);
  EXPECT_EQ(r1.qp_errors, r2.qp_errors);
  EXPECT_EQ(r1.qp_rearms, r2.qp_rearms);
  EXPECT_EQ(r1.flow_resets, r2.flow_resets);
}

}  // namespace
}  // namespace redn::test
