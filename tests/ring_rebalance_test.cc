// Ring membership: Remove(s) slides a shard's arcs to the survivors,
// Rejoin(s) restores the original mapping bit-for-bit (points depend only
// on seed/id/vnodes), and successors always name active shards.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "kv/ring.h"

namespace redn::test {
namespace {

using kv::ConsistentHashRing;

constexpr std::uint64_t kKeys = 20'000;

std::vector<int> Snapshot(const ConsistentHashRing& ring) {
  std::vector<int> owners;
  owners.reserve(kKeys);
  for (std::uint64_t k = 1; k <= kKeys; ++k) owners.push_back(ring.PrimaryOf(k));
  return owners;
}

TEST(RingRebalance, RemoveSlidesOwnershipOnlyOffTheRemovedShard) {
  ConsistentHashRing ring(4, 16, 7);
  const std::vector<int> before = Snapshot(ring);

  ring.Remove(2);
  EXPECT_FALSE(ring.IsActive(2));
  EXPECT_EQ(ring.active_shards(), 3);
  const std::vector<int> after = Snapshot(ring);

  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    if (before[i] == 2) {
      // Every key the removed shard owned must move, and to an active shard.
      EXPECT_NE(after[i], 2);
      ++moved;
    } else {
      // Minimal disruption: keys the removed shard never owned stay put.
      EXPECT_EQ(after[i], before[i]);
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(RingRebalance, RejoinRestoresTheOriginalMappingExactly) {
  ConsistentHashRing ring(5, 16, 11);
  const std::vector<int> before = Snapshot(ring);
  std::vector<int> succ_before;
  for (int s = 0; s < 5; ++s) succ_before.push_back(ring.SuccessorOf(s));

  ring.Remove(3);
  ring.Rejoin(3);
  EXPECT_TRUE(ring.IsActive(3));
  EXPECT_EQ(ring.active_shards(), 5);

  const std::vector<int> after = Snapshot(ring);
  EXPECT_EQ(before, after);
  for (int s = 0; s < 5; ++s) EXPECT_EQ(ring.SuccessorOf(s), succ_before[s]);
}

TEST(RingRebalance, SuccessorsAlwaysNameActiveShards) {
  ConsistentHashRing ring(4, 8, 3);
  ring.Remove(1);
  for (int s = 0; s < 4; ++s) {
    const int succ = ring.SuccessorOf(s);
    // Even the removed shard's successor answers "where did its keys go",
    // and it must point at a live shard other than itself.
    EXPECT_TRUE(ring.IsActive(succ));
    EXPECT_NE(succ, s);
  }
  // With two of four gone, the two survivors back each other up.
  ring.Remove(3);
  EXPECT_EQ(ring.SuccessorOf(0), 2);
  EXPECT_EQ(ring.SuccessorOf(2), 0);
}

TEST(RingRebalance, RemovedShardReceivesNoKeys) {
  ConsistentHashRing ring(3, 16, 9);
  ring.Remove(0);
  std::map<int, std::uint64_t> per_shard;
  for (std::uint64_t k = 1; k <= kKeys; ++k) ++per_shard[ring.PrimaryOf(k)];
  EXPECT_EQ(per_shard.count(0), 0u);
  EXPECT_GT(per_shard[1], 0u);
  EXPECT_GT(per_shard[2], 0u);
}

TEST(RingRebalance, MembershipMisuseThrows) {
  ConsistentHashRing ring(3, 8, 5);
  EXPECT_THROW(ring.Remove(-1), std::invalid_argument);
  EXPECT_THROW(ring.Remove(3), std::invalid_argument);
  EXPECT_THROW(ring.Rejoin(0), std::logic_error);  // already active
  ring.Remove(0);
  EXPECT_THROW(ring.Remove(0), std::logic_error);  // already removed
  ring.Remove(1);
  EXPECT_THROW(ring.Remove(2), std::logic_error);  // last active shard
  ring.Rejoin(0);
  EXPECT_NO_THROW(ring.Remove(2));
}

}  // namespace
}  // namespace redn::test
