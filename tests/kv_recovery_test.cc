// Chain-ordered writes + recovery: puts ack only after the successor
// durably applied, acked writes survive fault windows, a crashed shard
// re-joins through anti-entropy re-sync, and the gray-failure kinds
// (flaky bursts, slow links) degrade without losing anything.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "kv/resync.h"
#include "kv/table.h"
#include "sim/transport.h"
#include "testbed.h"
#include "workload/kv_service.h"

namespace redn::test {
namespace {

using workload::FaultEntry;
using workload::FaultKind;
using workload::KvServiceConfig;
using workload::KvServiceResult;
using workload::RunKvService;

KvServiceConfig MixedConfig() {
  KvServiceConfig cfg;
  cfg.shards = 3;
  cfg.tenants = 3;
  cfg.gets_per_tenant = 60;  // ops per tenant (the put mix draws from these)
  cfg.keys = 2'000;
  cfg.value_len = 256;
  cfg.put_fraction = 0.3;
  return cfg;
}

std::uint64_t Ops(const KvServiceResult& r) { return r.gets + r.puts; }

// --- healthy write path ------------------------------------------------------

TEST(KvRecovery, HealthyMixedRunAcksEveryPutThroughTheChain) {
  const KvServiceResult r = RunKvService(MixedConfig());
  EXPECT_EQ(Ops(r), 180u);
  EXPECT_EQ(r.unanswered, 0u);
  EXPECT_GT(r.puts, 0u);
  EXPECT_GT(r.gets, 0u);
  // No faults: every ack carries both replicas, via a chain forward each.
  EXPECT_EQ(r.acked_puts_full, r.puts);
  EXPECT_EQ(r.degraded_acks, 0u);
  EXPECT_GE(r.chain_forwards, r.puts);
  EXPECT_EQ(r.put_retries, 0u);
  // The invariants the write path exists for.
  EXPECT_EQ(r.lost_acked_writes, 0u);
  EXPECT_EQ(r.ryw_violations, 0u);
  EXPECT_EQ(r.value_divergence, 0u);
  // A put costs a forward + an ack on top of a get's round trip.
  EXPECT_GT(r.put_p50_us, 0.0);
  EXPECT_GE(r.put_p99_us, r.put_p50_us);
  std::uint64_t tenant_puts = 0;
  for (const auto& t : r.tenants) tenant_puts += t.puts;
  EXPECT_EQ(tenant_puts, r.puts);
}

TEST(KvRecovery, MixedRunsAreBitStable) {
  KvServiceConfig cfg = MixedConfig();
  FaultEntry crash;
  crash.server = 1;
  crash.kind = FaultKind::kCrash;
  crash.down_at = 50'000;
  crash.up_at = sim::Millis(2);
  cfg.faults.entries.push_back(crash);
  const KvServiceResult a = RunKvService(cfg);
  const KvServiceResult b = RunKvService(cfg);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.acked_puts_full, b.acked_puts_full);
  EXPECT_EQ(a.degraded_acks, b.degraded_acks);
  EXPECT_EQ(a.chain_forwards, b.chain_forwards);
  EXPECT_EQ(a.resync_keys_applied, b.resync_keys_applied);
  EXPECT_EQ(a.resync_keys_kept, b.resync_keys_kept);
  EXPECT_EQ(a.degraded_window_us, b.degraded_window_us);
  EXPECT_EQ(a.put_p999_us, b.put_p999_us);
  EXPECT_EQ(a.p999_us, b.p999_us);
  EXPECT_EQ(a.data_packets, b.data_packets);
  EXPECT_EQ(a.events, b.events);
}

// --- degraded writes ---------------------------------------------------------

TEST(KvRecovery, PutsDuringBlackholeDegradeToLoneReplicaAndHealResyncs) {
  KvServiceConfig cfg = MixedConfig();
  cfg.gets_per_tenant = 100;
  cfg.put_fraction = 0.5;
  FaultEntry bh;
  bh.server = 0;
  bh.kind = FaultKind::kBlackhole;
  bh.down_at = 30'000;
  bh.up_at = sim::Millis(3);
  cfg.faults.entries.push_back(bh);

  const KvServiceResult r = RunKvService(cfg);
  EXPECT_EQ(Ops(r), 300u);
  EXPECT_EQ(r.unanswered, 0u);
  // Writes inside the window could not reach shard 0: the surviving
  // replica acked alone and marked shard 0 dirty.
  EXPECT_GT(r.degraded_acks, 0u);
  EXPECT_LT(r.degraded_acks, r.puts);
  // The heal noticed the dirt and ran anti-entropy before re-opening.
  EXPECT_GE(r.resyncs_started, 1u);
  EXPECT_GT(r.resync_keys_scanned, 0u);
  EXPECT_EQ(r.resync_failures, 0u);
  // Every acked write is still durable where it was acked, and the
  // resync erased the replica drift the window caused.
  EXPECT_EQ(r.lost_acked_writes, 0u);
  EXPECT_EQ(r.ryw_violations, 0u);
  EXPECT_EQ(r.value_divergence, 0u);
  // The degraded window is bounded and reported: at least the fault
  // window itself, and not the whole run.
  EXPECT_GE(r.degraded_window_us, sim::ToMicros(bh.up_at - bh.down_at));
  EXPECT_LT(r.degraded_window_us, sim::ToMicros(cfg.horizon));
}

// --- crash + re-join ---------------------------------------------------------

TEST(KvRecovery, CrashedShardRejoinsThroughAntiEntropyResync) {
  KvServiceConfig cfg = MixedConfig();
  cfg.gets_per_tenant = 100;
  FaultEntry crash;
  crash.server = 1;
  crash.kind = FaultKind::kCrash;
  crash.down_at = 40'000;
  crash.up_at = sim::Millis(2);
  cfg.faults.entries.push_back(crash);

  const KvServiceResult r = RunKvService(cfg);
  EXPECT_EQ(Ops(r), 300u);
  EXPECT_EQ(r.unanswered, 0u);
  EXPECT_EQ(r.faults_applied, 1u);
  EXPECT_EQ(r.heals_applied, 1u);
  EXPECT_EQ(r.rejoins, 1u);
  // The re-joiner streamed its whole key range back from its chain peers.
  EXPECT_GE(r.resyncs_started, 1u);
  EXPECT_GT(r.resync_keys_scanned, 0u);
  EXPECT_GT(r.resync_keys_applied, 0u);
  EXPECT_GT(r.resync_bytes, 0u);
  EXPECT_EQ(r.resync_failures, 0u);
  // Nothing acked was lost, read-your-writes held, replicas converged.
  EXPECT_EQ(r.lost_acked_writes, 0u);
  EXPECT_EQ(r.ryw_violations, 0u);
  EXPECT_EQ(r.value_divergence, 0u);
  // down -> serving spans the outage plus the transfer, so it exceeds
  // the raw window; it is still bounded (reported, and far under the
  // horizon — the re-sync drains promptly, it does not linger).
  EXPECT_GE(r.degraded_window_us, sim::ToMicros(crash.up_at - crash.down_at));
  EXPECT_LT(r.degraded_window_us,
            2.0 * sim::ToMicros(crash.up_at - crash.down_at));
}

TEST(KvRecovery, PureGetCrashRejoinServesEveryGet) {
  // put_fraction = 0 but a healing crash still versions the store so the
  // re-join wipe + re-sync have tags to reconcile on.
  KvServiceConfig cfg = MixedConfig();
  cfg.put_fraction = 0.0;
  cfg.gets_per_tenant = 100;
  FaultEntry crash;
  crash.server = 2;
  crash.kind = FaultKind::kCrash;
  crash.down_at = 40'000;
  crash.up_at = sim::Millis(2);
  cfg.faults.entries.push_back(crash);
  const KvServiceResult r = RunKvService(cfg);
  EXPECT_EQ(r.gets, 300u);
  EXPECT_EQ(r.puts, 0u);
  EXPECT_EQ(r.unanswered, 0u);
  EXPECT_EQ(r.rejoins, 1u);
  EXPECT_GE(r.resyncs_started, 1u);
  EXPECT_EQ(r.lost_acked_writes, 0u);
  EXPECT_EQ(r.value_divergence, 0u);
}

// --- gray failures -----------------------------------------------------------

TEST(KvRecovery, FlakyWindowDegradesButLosesNothing) {
  KvServiceConfig cfg = MixedConfig();
  cfg.gets_per_tenant = 100;
  cfg.retry_count = 8;  // ride out bursts instead of declaring death
  FaultEntry flaky;
  flaky.server = 0;
  flaky.kind = FaultKind::kFlaky;
  flaky.down_at = 30'000;
  flaky.up_at = sim::Millis(4);
  cfg.faults.entries.push_back(flaky);

  const KvServiceResult r = RunKvService(cfg);
  EXPECT_EQ(Ops(r), 300u);
  EXPECT_EQ(r.unanswered, 0u);
  // Loss bursts force transport-level recovery.
  EXPECT_GT(r.retransmits, 0u);
  EXPECT_EQ(r.lost_acked_writes, 0u);
  EXPECT_EQ(r.ryw_violations, 0u);
  EXPECT_EQ(r.value_divergence, 0u);

  // Same seed, same bursts, same result.
  const KvServiceResult again = RunKvService(cfg);
  EXPECT_EQ(again.retransmits, r.retransmits);
  EXPECT_EQ(again.p999_us, r.p999_us);
  EXPECT_EQ(again.events, r.events);

  // A different seed draws different burst boundaries.
  KvServiceConfig reseeded = cfg;
  reseeded.seed = 2;
  const KvServiceResult other = RunKvService(reseeded);
  EXPECT_NE(other.events, r.events);
}

TEST(KvRecovery, SlowLinkStretchesTailsWithoutFailover) {
  KvServiceConfig cfg = MixedConfig();
  cfg.gets_per_tenant = 100;
  FaultEntry slow;
  slow.server = 0;
  slow.kind = FaultKind::kSlow;
  slow.down_at = 30'000;
  slow.up_at = sim::Millis(2);
  slow.slow_ns = 30'000;
  cfg.faults.entries.push_back(slow);

  const KvServiceResult base = RunKvService(MixedConfig());
  const KvServiceResult r = RunKvService(cfg);
  EXPECT_EQ(Ops(r), 300u);
  EXPECT_EQ(r.unanswered, 0u);
  // Latency, not loss: no QP died, nothing needed re-syncing.
  EXPECT_EQ(r.qp_errors, 0u);
  EXPECT_EQ(r.resyncs_started, 0u);
  EXPECT_EQ(r.lost_acked_writes, 0u);
  EXPECT_EQ(r.value_divergence, 0u);
  EXPECT_GT(r.p999_us, base.p999_us);
  // The window is reported as exactly the configured span.
  EXPECT_DOUBLE_EQ(r.degraded_window_us,
                   sim::ToMicros(slow.up_at - slow.down_at));
}

// --- ResyncSession unit ------------------------------------------------------

class ResyncBed : public ::testing::Test {
 protected:
  ResyncBed() : tr(bed.sim, fabric, sim::TransportConfig{}) {
    bed.client.AttachPort(0, fabric, {25.0, 125});
    bed.server.AttachPort(0, fabric, {25.0, 125});
    QpConfig c;
    c.send_cq = bed.client.CreateCq();
    c.recv_cq = bed.client.CreateCq();
    rq = bed.client.CreateQp(c);
    QpConfig s;
    s.send_cq = bed.server.CreateCq();
    s.recv_cq = bed.server.CreateCq();
    dq = bed.server.CreateQp(s);
    rnic::ConnectOverTransport(rq, dq, tr);
  }

  // `n` values of `len` bytes on each side; the local (resyncing) side on
  // the client device, the donor on the server device.
  void Seed(int n, std::uint32_t len) {
    len_ = len;
    local_ = bed.Alloc(bed.client, static_cast<std::size_t>(n) * len);
    donor_ = bed.Alloc(bed.server, static_cast<std::size_t>(n) * len);
    for (int i = 0; i < n; ++i) {
      items_.push_back(kv::ResyncSession::Item{
          static_cast<std::uint64_t>(100 + i), donor_.addr() + i * len,
          local_.addr() + i * len, len});
    }
  }
  std::uint64_t LocalAddr(int i) const { return local_.addr() + i * len_; }
  std::uint64_t DonorAddr(int i) const { return donor_.addr() + i * len_; }

  kv::ResyncSession::Config SessionConfig(int window = 4) {
    kv::ResyncSession::Config c;
    c.qp = rq;
    c.remote_rkey = donor_.rkey();
    c.window = window;
    return c;
  }

  TestBed bed;
  sim::Fabric fabric;
  sim::Transport tr;
  QueuePair* rq = nullptr;
  QueuePair* dq = nullptr;
  Buffer local_;
  Buffer donor_;
  std::vector<kv::ResyncSession::Item> items_;
  std::uint32_t len_ = 0;
};

TEST_F(ResyncBed, ReconcilesByVersionTagAndKeepsNewerLocalValues) {
  Seed(8, 128);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t key = items_[i].key;
    kv::WriteVersionedValue(DonorAddr(i), 128, key, 5);
    // Chain-order violation injection: values 0..2 carry a HIGHER local
    // version than the donor stages — the shape a dual-applied put (or an
    // out-of-order transfer) leaves behind. They must survive untouched.
    kv::WriteVersionedValue(LocalAddr(i), 128, key, i < 3 ? 7 : 2);
  }
  kv::ResyncSession::Stats done;
  kv::ResyncSession s(bed.sim, SessionConfig(), items_,
                      [&](const kv::ResyncSession::Stats& st) { done = st; });
  s.Start();
  bed.sim.Run();

  ASSERT_TRUE(s.done());
  EXPECT_FALSE(done.failed);
  EXPECT_EQ(done.keys_scanned, 8u);
  EXPECT_EQ(done.keys_applied, 5u);
  EXPECT_EQ(done.keys_kept_local, 3u);
  EXPECT_EQ(done.bytes_read, 8u * 128u);
  EXPECT_GT(done.finished, done.started);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t key = items_[i].key;
    EXPECT_EQ(kv::ValueVersion(LocalAddr(i)), i < 3 ? 7u : 5u) << i;
    EXPECT_TRUE(kv::VersionedValueIntact(LocalAddr(i), 128, key)) << i;
  }
}

TEST_F(ResyncBed, TieGoesToThePeerSoRerunningIsIdempotent) {
  Seed(4, 64);
  for (int i = 0; i < 4; ++i) {
    kv::WriteVersionedValue(DonorAddr(i), 64, items_[i].key, 3);
    kv::WriteVersionedValue(LocalAddr(i), 64, items_[i].key, i == 0 ? 3 : 1);
  }
  kv::ResyncSession first(bed.sim, SessionConfig(), items_, nullptr);
  first.Start();
  bed.sim.Run();
  EXPECT_EQ(first.stats().keys_applied, 4u);  // the tie adopted too

  // Re-running against an unchanged donor re-adopts everything and
  // changes nothing — the >= rule at work.
  kv::ResyncSession second(bed.sim, SessionConfig(), items_, nullptr);
  second.Start();
  bed.sim.Run();
  EXPECT_EQ(second.stats().keys_applied, 4u);
  EXPECT_EQ(second.stats().keys_kept_local, 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(kv::ValueVersion(LocalAddr(i)), 3u);
    EXPECT_TRUE(kv::VersionedValueIntact(LocalAddr(i), 64, items_[i].key));
  }
}

TEST_F(ResyncBed, EmptyItemListFinishesSynchronously) {
  Seed(2, 64);
  bool fired = false;
  kv::ResyncSession s(bed.sim, SessionConfig(), {},
                      [&](const kv::ResyncSession::Stats& st) {
                        fired = true;
                        EXPECT_EQ(st.keys_scanned, 0u);
                      });
  s.Start();
  EXPECT_TRUE(fired);  // no events needed
  EXPECT_TRUE(s.done());
}

TEST_F(ResyncBed, DonorDeathMidSyncMarksFailedAndLeavesLocalValuesAlone) {
  Seed(6, 128);
  for (int i = 0; i < 6; ++i) {
    kv::WriteVersionedValue(DonorAddr(i), 128, items_[i].key, 9);
    kv::WriteVersionedValue(LocalAddr(i), 128, items_[i].key, 1);
  }
  dq->owner_pid = 42;
  bed.server.KillProcessResources(42);  // donor dies before any READ lands
  kv::ResyncSession::Stats done;
  kv::ResyncSession s(bed.sim, SessionConfig(/*window=*/2), items_,
                      [&](const kv::ResyncSession::Stats& st) { done = st; });
  s.Start();
  bed.sim.Run();
  ASSERT_TRUE(s.done());
  EXPECT_TRUE(done.failed);
  EXPECT_EQ(done.keys_applied, 0u);
  // Nothing was adopted off the dead donor; the local copies are intact.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(kv::ValueVersion(LocalAddr(i)), 1u);
    EXPECT_TRUE(kv::VersionedValueIntact(LocalAddr(i), 128, items_[i].key));
  }
}

TEST_F(ResyncBed, MalformedSessionsThrow) {
  Seed(2, 64);
  kv::ResyncSession::Config bad = SessionConfig();
  bad.qp = nullptr;
  EXPECT_THROW(kv::ResyncSession(bed.sim, bad, items_, nullptr),
               std::invalid_argument);
  bad = SessionConfig();
  bad.window = 0;
  EXPECT_THROW(kv::ResyncSession(bed.sim, bad, items_, nullptr),
               std::invalid_argument);
  auto runt = items_;
  runt[0].len = 4;  // shorter than the version tag
  EXPECT_THROW(kv::ResyncSession(bed.sim, SessionConfig(), runt, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace redn::test
