// Determinism proof for the calendar-queue engine: on a randomized schedule
// whose events recursively spawn more events (including past-time schedules
// that clamp), the Simulator must dispatch in *bit-identical* order to a
// reference engine built the way the seed simulator was — a binary heap
// ordered by (time, seq) with the same past-time clamping rule. The workload
// spans all three tiers of the calendar (fine wheel, coarse wheel, far set),
// so the cross-tier cascades are covered, not just the fine-ring fast path.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace redn::sim {
namespace {

// splitmix64: event behavior (fanout, deltas) is a pure function of the
// event id, so both engines see the same workload by construction.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deltas span the engine's three horizons: the 4.1 us fine wheel, the
// 16.8 ms coarse wheel, and the far set beyond it. A slice of them is
// negative to exercise the clamp-to-now FIFO rule.
std::int64_t ChildDelta(std::uint64_t id, int k) {
  const std::uint64_t r = Mix(id * 8 + static_cast<std::uint64_t>(k) + 1);
  switch (r % 8) {
    case 0: return 0;                                            // same instant
    case 1: return -static_cast<std::int64_t>(r % 1000);         // clamped past
    case 2: case 3: return static_cast<std::int64_t>(r % 3000);  // fine wheel
    case 4: case 5:
      return static_cast<std::int64_t>(r % 10'000'000);          // coarse wheel
    default:
      return static_cast<std::int64_t>(r % 60'000'000);          // far set
  }
}

int Fanout(std::uint64_t id) {
  const std::uint64_t r = Mix(id ^ 0xabcdef);
  return static_cast<int>(r % 3);  // 0..2 children per event
}

using Trace = std::vector<std::pair<Nanos, std::uint64_t>>;

constexpr std::size_t kMaxEvents = 50'000;
constexpr int kSeedEvents = 512;

// Reference engine: the seed's data structure, kept minimal. A binary heap
// of (time, seq, id), same clamp rule, same seq tie-break.
Trace RunReference() {
  struct Ev {
    Nanos t;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> q;
  Nanos now = 0;
  std::uint64_t seq = 0;
  std::uint64_t next_id = 0;
  Trace trace;

  const auto schedule = [&](Nanos t, std::uint64_t id) {
    if (t < now) t = now;
    q.push(Ev{t, seq++, id});
  };
  for (int i = 0; i < kSeedEvents; ++i) {
    schedule(static_cast<Nanos>(Mix(next_id) % 40'000'000), next_id);
    ++next_id;
  }
  while (!q.empty()) {
    const Ev e = q.top();
    q.pop();
    now = e.t;
    trace.emplace_back(now, e.id);
    if (trace.size() >= kMaxEvents) break;
    const int fan = Fanout(e.id);
    for (int k = 0; k < fan; ++k) {
      schedule(now + ChildDelta(e.id, k), next_id++);
    }
  }
  return trace;
}

Trace RunSimulator() {
  Simulator s;
  std::uint64_t next_id = 0;
  Trace trace;

  struct Node {
    Simulator* s;
    std::uint64_t* next_id;
    Trace* trace;
    std::uint64_t id;
    void operator()() const {
      if (trace->size() >= kMaxEvents) return;
      trace->emplace_back(s->now(), id);
      if (trace->size() >= kMaxEvents) return;
      const int fan = Fanout(id);
      for (int k = 0; k < fan; ++k) {
        const std::uint64_t child = (*next_id)++;
        s->At(s->now() + ChildDelta(id, k),
              Node{s, next_id, trace, child});
      }
    }
  };

  for (int i = 0; i < kSeedEvents; ++i) {
    s.At(static_cast<Nanos>(Mix(next_id) % 40'000'000),
         Node{&s, &next_id, &trace, next_id});
    ++next_id;
  }
  s.Run();
  return trace;
}

TEST(SimulatorDeterminism, MatchesReferenceHeapOnRandomizedSchedule) {
  const Trace ref = RunReference();
  const Trace got = RunSimulator();
  ASSERT_GE(ref.size(), kMaxEvents / 2) << "workload too small to be meaningful";
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(got[i], ref[i]) << "divergence at event " << i;
  }
  // The whole workload uses small captures: the steady state must be
  // allocation-free (every callback stored inline in its slab node).
  // (Checked on a fresh run because the traced one ends early at the cap.)
}

TEST(SimulatorDeterminism, RandomizedScheduleIsFullySlabResident) {
  Simulator s;
  std::uint64_t next_id = 0;
  Trace trace;
  struct Node {
    Simulator* s;
    std::uint64_t* next_id;
    Trace* trace;
    std::uint64_t id;
    void operator()() const {
      if (trace->size() >= kMaxEvents) return;
      trace->emplace_back(s->now(), id);
      const int fan = Fanout(id);
      for (int k = 0; k < fan; ++k) {
        const std::uint64_t child = (*next_id)++;
        s->At(s->now() + ChildDelta(id, k),
              Node{s, next_id, trace, child});
      }
    }
  };
  for (int i = 0; i < kSeedEvents; ++i) {
    s.At(static_cast<Nanos>(Mix(next_id) % 40'000'000),
         Node{&s, &next_id, &trace, next_id});
    ++next_id;
  }
  s.Run();
  EXPECT_GT(s.slab_hits(), 0u);
  EXPECT_EQ(s.heap_fallbacks(), 0u);
}

}  // namespace
}  // namespace redn::sim
