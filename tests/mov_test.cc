// Tests for the mov-instruction emulation (Appendix A / Table 7): the
// machinery behind the Turing-completeness argument.
#include <gtest/gtest.h>

#include "redn/mov.h"
#include "testbed.h"

namespace redn::test {
namespace {

using core::MovMachine;

class MovTest : public ::testing::Test {
 protected:
  TestBed bed;
};

TEST_F(MovTest, ImmediateLoadsConstant) {
  MovMachine m(bed.server, 4);
  m.MovImmediate(0, 0xdeadbeef);
  m.Run();
  EXPECT_EQ(m.Reg(0), 0xdeadbeefu);
}

TEST_F(MovTest, RegToRegCopies) {
  MovMachine m(bed.server, 4);
  m.SetReg(1, 777);
  m.MovReg(0, 1);
  m.Run();
  EXPECT_EQ(m.Reg(0), 777u);
}

TEST_F(MovTest, IndirectLoadDereferencesPointer) {
  // mov Rdst, [Rsrc] — Rsrc holds the address of a memory cell.
  MovMachine m(bed.server, 4);
  const std::uint64_t cell = m.AllocCells(1);
  m.SetCell(cell, 31337);
  m.SetReg(1, cell);
  m.MovIndirectLoad(0, 1);
  m.Run();
  EXPECT_EQ(m.Reg(0), 31337u);
}

TEST_F(MovTest, IndexedLoadAddsOffsetRegister) {
  // mov Rdst, [Rsrc + Roff] with a runtime offset register.
  MovMachine m(bed.server, 4);
  const std::uint64_t arr = m.AllocCells(8);
  for (int i = 0; i < 8; ++i) m.SetCell(arr + i * 8, 1000 + i);
  m.SetReg(1, arr);
  m.SetReg(2, 3 * 8);  // byte offset of element 3
  m.MovIndexedLoad(0, 1, 2);
  m.Run();
  EXPECT_EQ(m.Reg(0), 1003u);
}

TEST_F(MovTest, IndirectStoreWritesThroughPointer) {
  MovMachine m(bed.server, 4);
  const std::uint64_t cell = m.AllocCells(1);
  m.SetReg(0, cell);
  m.SetReg(1, 4242);
  m.MovIndirectStore(0, 1);
  m.Run();
  EXPECT_EQ(m.Cell(cell), 4242u);
}

TEST_F(MovTest, DependentInstructionSequence) {
  // RAW chains across all addressing modes: R2 = [[R1]] via two indirect
  // loads, then stored through a pointer.
  MovMachine m(bed.server, 8);
  const std::uint64_t cells = m.AllocCells(2);
  const std::uint64_t out = m.AllocCells(1);
  m.SetCell(cells, cells + 8);  // cell0 -> &cell1
  m.SetCell(cells + 8, 555);    // cell1 = 555

  m.SetReg(1, cells);
  m.MovIndirectLoad(2, 1);  // R2 = cell0 = &cell1
  m.MovIndirectLoad(3, 2);  // R3 = [R2] = 555
  m.MovImmediate(4, out);
  m.MovIndirectStore(4, 3);  // [out] = R3
  m.Run();
  EXPECT_EQ(m.Cell(out), 555u);
}

TEST_F(MovTest, TableLookupStateMachineStepwise) {
  // A DFA step the way Dolan's mov machine does it: state = T[state*2+bit].
  // Each transition is one NIC-executed indexed load; the host only stages
  // the next offset between steps (the fully NIC-resident variant, where
  // the scaling itself is mov-encoded, lives in examples/mov_machine).
  MovMachine m(bed.server, 8);
  const std::uint64_t table = m.AllocCells(4);
  m.SetCell(table + 0, 0);   // state 0, input 0 -> 0
  m.SetCell(table + 8, 1);   // state 0, input 1 -> 1
  m.SetCell(table + 16, 1);  // state 1, input 0 -> 1
  m.SetCell(table + 24, 0);  // state 1, input 1 -> 0

  m.SetReg(0, 0);      // state register
  m.SetReg(1, table);  // table base

  const std::vector<int> input = {1, 1, 0, 1};
  int expected = 0;
  for (int bit : input) {
    expected ^= bit;
    m.SetReg(2, m.Reg(0) * 16 + bit * 8);  // byte offset of T[state][bit]
    m.MovIndexedLoad(0, 1, 2);
    m.Run();  // Run is resumable: each step extends the same program
  }
  EXPECT_EQ(m.Reg(0), static_cast<std::uint64_t>(expected));
}

TEST_F(MovTest, InstructionCountAndBudgetTracked) {
  MovMachine m(bed.server, 4);
  m.MovImmediate(0, 1);
  m.MovReg(1, 0);
  const std::uint64_t cell = m.AllocCells(1);
  m.SetReg(2, cell);
  m.MovIndirectLoad(3, 2);
  EXPECT_EQ(m.instruction_count(), 3);
  EXPECT_GT(m.budget().copy, 0);
  EXPECT_GT(m.budget().sync, 0);
}

TEST_F(MovTest, RunReportsSimulatedTime) {
  MovMachine m(bed.server, 4);
  m.MovImmediate(0, 1);
  const sim::Nanos t = m.Run();
  EXPECT_GT(t, 0);
  EXPECT_LT(t, sim::Micros(50));
}

}  // namespace
}  // namespace redn::test
