// Shared-fabric tests: link math, receiver-side contention, device routing,
// and the N-client scale-out experiment (determinism + genuine sharing).
#include <gtest/gtest.h>

#include "sim/fabric.h"
#include "testbed.h"
#include "workload/experiments.h"

namespace redn::test {
namespace {

using rnic::Connect;
using rnic::ConnectOverFabric;
using verbs::AwaitCqe;
using verbs::Cqe;
using verbs::MakeWrite;
using verbs::PostSendNow;

TEST(Fabric, OneWayAndUncontendedDelivery) {
  sim::Fabric f(/*switch_latency=*/10);
  // 8 Gbps = 1 ns/byte keeps the arithmetic legible.
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  EXPECT_EQ(f.OneWay(a, b), 210);
  // 1000 B: TX serialization 1000, propagation 210, RX serialization 1000.
  EXPECT_EQ(f.Deliver(a, b, 0, 1000), 2210);
  // The pipes are free again by t=10000; a later transfer pays its own
  // serialization on each pipe plus propagation: 10000 + 500 + 210 + 500.
  EXPECT_EQ(f.Deliver(a, b, 10'000, 500), 11'210);
}

TEST(Fabric, ReceiverLinkQueuesConcurrentSenders) {
  sim::Fabric f;
  const int a = f.Attach({8.0, 100});
  const int b = f.Attach({8.0, 100});
  const int c = f.Attach({8.0, 100});
  // Two senders, one receiver, both transfers leave at t=0: each serializes
  // its own TX in parallel, but c's RX pipe takes them one after the other.
  EXPECT_EQ(f.Deliver(a, c, 0, 1000), 2200);
  EXPECT_EQ(f.Deliver(b, c, 0, 1000), 3200);  // queued behind a's bytes
  EXPECT_GT(f.RxUtilisation(c, 3200), 0.6);
}

TEST(Fabric, SameSourceSerializesOnItsTxLink) {
  sim::Fabric f;
  const int a = f.Attach({8.0, 0});
  const int b = f.Attach({8.0, 0});
  EXPECT_EQ(f.Deliver(a, b, 0, 1000), 2000);
  // Second transfer from the same source departs only once the TX pipe
  // frees at t=2000, then serializes into RX right behind the first.
  EXPECT_EQ(f.Deliver(a, b, 0, 1000), 3000);
}

TEST(Fabric, UtilisationTruncatesAtWindowAndNeverExceedsOne) {
  sim::Fabric f;
  const int a = f.Attach({8.0, 0});  // 1 ns/byte
  const int b = f.Attach({8.0, 0});
  f.Deliver(a, b, 0, 10'000);  // both pipes busy for 10 us
  // A window shorter than the accumulated busy time used to report > 1.0;
  // the busy interval is truncated at the window boundary instead.
  EXPECT_EQ(f.TxUtilisation(a, 100), 1.0);  // TX busy solid over [0, 10000]
  EXPECT_EQ(f.TxUtilisation(a, 0), 0.0);
  // Store-and-forward: the RX pipe serializes over [10000, 20000], so it
  // was idle inside a [0, 100] window and exactly 1/3 busy inside
  // [0, 15000] — never the old busy/window quotient of 100x.
  EXPECT_EQ(f.RxUtilisation(b, 100), 0.0);
  EXPECT_DOUBLE_EQ(f.RxUtilisation(b, 15'000), 5'000.0 / 15'000.0);
  // A window covering everything reports the exact busy fraction.
  EXPECT_DOUBLE_EQ(f.TxUtilisation(a, 20'000), 0.5);
  EXPECT_DOUBLE_EQ(f.TxUtilisation(a, 10'000), 1.0);
}

class FabricBed : public ::testing::Test {
 protected:
  // A server and two clients on a shared fabric (server link = client link).
  FabricBed() {
    server.AttachPort(0, fabric, {25.0, 125});
    client1.AttachPort(0, fabric, {25.0, 125});
    client2.AttachPort(0, fabric, {25.0, 125});
  }

  rnic::QueuePair* MakeQp(rnic::RnicDevice& dev) {
    rnic::QpConfig c;
    c.send_cq = dev.CreateCq();
    c.recv_cq = dev.CreateCq();
    return dev.CreateQp(c);
  }

  sim::Simulator sim;
  sim::Fabric fabric;
  rnic::RnicDevice server{sim, rnic::NicConfig::ConnectX5(), {}, "server"};
  rnic::RnicDevice client1{sim, rnic::NicConfig::ConnectX5(), {}, "client1"};
  rnic::RnicDevice client2{sim, rnic::NicConfig::ConnectX5(), {}, "client2"};
};

TEST_F(FabricBed, WriteOverFabricDeliversAndCompletes) {
  rnic::QueuePair* cqp = MakeQp(client1);
  rnic::QueuePair* sqp = MakeQp(server);
  ConnectOverFabric(cqp, sqp);
  auto src = std::make_unique<std::byte[]>(64);
  auto dst = std::make_unique<std::byte[]>(64);
  auto smr = client1.pd().Register(src.get(), 64, rnic::kAccessAll);
  auto dmr = server.pd().Register(dst.get(), 64, rnic::kAccessAll);
  rnic::dma::WriteU64(smr.addr, 0xfeedu);
  PostSendNow(cqp, MakeWrite(smr.addr, 8, smr.lkey, dmr.addr, dmr.rkey));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(sim, client1, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(rnic::dma::ReadU64(dmr.addr), 0xfeedu);
  // Latency must include both propagation legs plus serialization on two
  // pipes — strictly more than the old constant-wire model's floor.
  EXPECT_GT(sim.now(), 2 * 125);
  EXPECT_GT(fabric.TxUtilisation(client1.fabric_endpoint(0), sim.now()), 0.0);
  EXPECT_GT(fabric.RxUtilisation(server.fabric_endpoint(0), sim.now()), 0.0);
}

TEST_F(FabricBed, ReadOverFabricReturnsDataAndChargesResponder) {
  rnic::QueuePair* cqp = MakeQp(client1);
  rnic::QueuePair* sqp = MakeQp(server);
  ConnectOverFabric(cqp, sqp);
  auto local = std::make_unique<std::byte[]>(64);
  auto remote = std::make_unique<std::byte[]>(64);
  auto lmr = client1.pd().Register(local.get(), 64, rnic::kAccessAll);
  auto rmr = server.pd().Register(remote.get(), 64, rnic::kAccessAll);
  rnic::dma::WriteU64(rmr.addr, 0xabcdu);
  PostSendNow(cqp, verbs::MakeRead(lmr.addr, 8, lmr.lkey, rmr.addr, rmr.rkey));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(sim, client1, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(rnic::dma::ReadU64(lmr.addr), 0xabcdu);
  // The response payload rides the responder's TX pipe back.
  EXPECT_GT(fabric.TxUtilisation(server.fabric_endpoint(0), sim.now()), 0.0);
  EXPECT_GT(fabric.RxUtilisation(client1.fabric_endpoint(0), sim.now()), 0.0);
}

TEST_F(FabricBed, TwoClientsContendOnServerRxLink) {
  // Each client fires one 64 KiB write at the same instant; the second
  // arrival is pushed back by the first one's RX serialization.
  rnic::QueuePair* c1 = MakeQp(client1);
  rnic::QueuePair* c2 = MakeQp(client2);
  rnic::QueuePair* s1 = MakeQp(server);
  rnic::QueuePair* s2 = MakeQp(server);
  ConnectOverFabric(c1, s1);
  ConnectOverFabric(c2, s2);
  constexpr std::size_t kLen = 64 << 10;
  auto src1 = std::make_unique<std::byte[]>(kLen);
  auto src2 = std::make_unique<std::byte[]>(kLen);
  auto dst = std::make_unique<std::byte[]>(2 * kLen);
  auto m1 = client1.pd().Register(src1.get(), kLen, rnic::kAccessAll);
  auto m2 = client2.pd().Register(src2.get(), kLen, rnic::kAccessAll);
  auto md = server.pd().Register(dst.get(), 2 * kLen, rnic::kAccessAll);
  PostSendNow(c1, MakeWrite(m1.addr, kLen, m1.lkey, md.addr, md.rkey));
  PostSendNow(c2, MakeWrite(m2.addr, kLen, m2.lkey, md.addr + kLen, md.rkey));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(sim, client1, c1->send_cq, &cqe));
  const sim::Nanos t1 = cqe.completed_at;
  ASSERT_TRUE(AwaitCqe(sim, client2, c2->send_cq, &cqe));
  const sim::Nanos t2 = cqe.completed_at;
  // The server RX pipe at 25 Gbps spends ~21 us per 64 KiB transfer; the
  // loser of the race finishes at least one serialization later.
  const sim::Nanos ser =
      fabric.SerializationDelay(server.fabric_endpoint(0), kLen);
  EXPECT_GT(ser, 20'000);
  EXPECT_GE(t2 - t1, ser / 2) << "no queueing at the shared server link";
}

TEST(FabricScale, DeterministicAndContended) {
  workload::FabricScaleConfig cfg;
  cfg.clients = 4;
  cfg.gets_per_client = 25;
  cfg.value_len = 16384;
  cfg.keys = 64;
  const auto r1 = workload::RunFabricScale(cfg);
  EXPECT_EQ(r1.gets, 100u);  // every get answered
  // Bit-stable: an identical config reproduces every simulated field.
  const auto r2 = workload::RunFabricScale(cfg);
  EXPECT_EQ(r1.gets, r2.gets);
  EXPECT_EQ(r1.duration_us, r2.duration_us);
  EXPECT_EQ(r1.avg_us, r2.avg_us);
  EXPECT_EQ(r1.p99_us, r2.p99_us);
  EXPECT_EQ(r1.server_tx_util, r2.server_tx_util);
  // Genuine sharing: four clients on one 25 Gbps server link cannot scale
  // linearly, and the shared link must be visibly busy.
  cfg.clients = 1;
  cfg.gets_per_client = 25;
  const auto one = workload::RunFabricScale(cfg);
  EXPECT_EQ(one.gets, 25u);
  EXPECT_LT(r1.gets_per_sec, 3.9 * one.gets_per_sec);
  EXPECT_GE(r1.p99_us, one.p99_us);
  EXPECT_GT(r1.server_tx_util, 0.5);
}

}  // namespace
}  // namespace redn::test
