// Tests for the Fig 5/6 array-search offload: the paper's canonical
// unrolled `while` with and without `break`.
#include <gtest/gtest.h>

#include "offloads/array_search.h"
#include "testbed.h"

namespace redn::test {
namespace {

using offloads::ArraySearchOffload;
using offloads::SearchArray;

struct SearchRig {
  TestBed& bed;
  SearchArray array;
  rnic::QueuePair* srv;
  rnic::QueuePair* cli;
  Buffer resp;
  Buffer msg;

  SearchRig(TestBed& b, std::vector<std::uint64_t> values)
      : bed(b), array(b.server, std::move(values)) {
    rnic::QpConfig s;
    s.sq_depth = 1 << 12;
    s.rq_depth = 256;
    s.managed = true;
    s.send_cq = b.server.CreateCq();
    s.recv_cq = b.server.CreateCq();
    srv = b.server.CreateQp(s);
    rnic::QpConfig c;
    c.send_cq = b.client.CreateCq();
    c.recv_cq = b.client.CreateCq();
    cli = b.client.CreateQp(c);
    rnic::Connect(cli, srv, rnic::Calibration{}.net_one_way);
    resp = bed.Alloc(b.client, 8);
    msg = bed.Alloc(b.client, 16 * 8);
  }

  // Returns the index the NIC found, or -1 on miss.
  std::int64_t Search(std::uint64_t x, bool use_break) {
    resp.SetU64(0, ~std::uint64_t{0});
    ArraySearchOffload off(bed.server, array, srv, {.use_break = use_break},
                           resp.addr(), resp.rkey());
    verbs::RecvWr rwr;
    verbs::PostRecv(cli, rwr);
    off.BuildTrigger(x, msg.bytes());
    verbs::PostSendNow(cli, verbs::MakeSend(msg.addr(), off.TriggerBytes(),
                                            msg.lkey(), /*signaled=*/false));
    verbs::Cqe cqe;
    std::int64_t found = -1;
    if (verbs::AwaitCqe(bed.sim, bed.client, cli->recv_cq, &cqe,
                        bed.sim.now() + sim::Micros(300))) {
      found = static_cast<std::int64_t>(resp.U64(0));
    }
    bed.sim.Run();
    return found;
  }
};

class ArraySearchTest : public ::testing::Test {
 protected:
  TestBed bed;
};

TEST_F(ArraySearchTest, FindsEveryElement) {
  SearchRig rig(bed, {10, 20, 30, 40, 50, 60, 70, 80});
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rig.Search(10 * (i + 1), false), i);
  }
}

TEST_F(ArraySearchTest, FindsEveryElementWithBreak) {
  SearchRig rig(bed, {10, 20, 30, 40});
  for (int i = 0; i < 4; ++i) {
    TestBed fresh;  // break stalls gates; isolate per request
    SearchRig r2(fresh, {10, 20, 30, 40});
    EXPECT_EQ(r2.Search(10 * (i + 1), true), i);
  }
}

TEST_F(ArraySearchTest, MissReturnsNothing) {
  SearchRig rig(bed, {1, 2, 3});
  EXPECT_EQ(rig.Search(99, false), -1);
}

TEST_F(ArraySearchTest, IdentityArrayMatchesPaperSimplification) {
  // The paper's Fig 5 assumes A[i] = i: search(x) returns x itself.
  SearchRig rig(bed, {0x100, 0x100 + 1, 0x100 + 2, 0x100 + 3});
  // keys offset to avoid the reserved 0; semantics identical
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.Search(0x100 + i, false), i);
  }
}

TEST_F(ArraySearchTest, BreakExecutesFewerWrsOnEarlyHit) {
  TestBed b1;
  SearchRig r1(b1, {11, 22, 33, 44, 55, 66, 77, 88});
  b1.sim.Run();
  const auto before1 = b1.server.counters().TotalExecuted();
  ASSERT_EQ(r1.Search(11, false), 0);
  const auto full = b1.server.counters().TotalExecuted() - before1;

  TestBed b2;
  SearchRig r2(b2, {11, 22, 33, 44, 55, 66, 77, 88});
  b2.sim.Run();
  const auto before2 = b2.server.counters().TotalExecuted();
  ASSERT_EQ(r2.Search(11, true), 0);
  const auto stopped = b2.server.counters().TotalExecuted() - before2;
  EXPECT_LT(stopped, full / 2);
}

TEST_F(ArraySearchTest, DuplicateValuesReturnSomeMatchingIndex) {
  SearchRig rig(bed, {7, 7, 9});
  const std::int64_t idx = rig.Search(7, false);
  EXPECT_TRUE(idx == 0 || idx == 1);
}

TEST_F(ArraySearchTest, SingleElementArray) {
  SearchRig rig(bed, {42});
  EXPECT_EQ(rig.Search(42, false), 0);
  EXPECT_EQ(rig.Search(41, false), -1);
}

TEST_F(ArraySearchTest, WrBudgetScalesLinearly) {
  TestBed b;
  SearchRig small(b, {1, 2});
  SearchRig large(b, {1, 2, 3, 4, 5, 6, 7, 8});
  ArraySearchOffload o2(b.server, small.array, small.srv, {}, small.resp.addr(),
                        small.resp.rkey());
  ArraySearchOffload o8(b.server, large.array, large.srv, {}, large.resp.addr(),
                        large.resp.rkey());
  EXPECT_NEAR(o8.wrs_posted(), 4 * o2.wrs_posted() - 3 * 1, 8);
  b.sim.Run();
}

}  // namespace
}  // namespace redn::test
