// Unit tests for protection domains, memory regions, and key checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "rnic/memory.h"

namespace redn::rnic {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  ProtectionDomain pd;
  std::unique_ptr<std::byte[]> buf = std::make_unique<std::byte[]>(4096);
  std::uint64_t base() const { return dma::AddrOf(buf.get()); }
};

TEST_F(MemoryTest, RegisterAssignsDistinctKeys) {
  const auto& a = pd.Register(buf.get(), 1024, kAccessAll);
  const auto& b = pd.Register(buf.get() + 1024, 1024, kAccessAll);
  EXPECT_NE(a.lkey, b.lkey);
  EXPECT_NE(a.rkey, b.rkey);
  EXPECT_NE(a.lkey, a.rkey);
  EXPECT_EQ(pd.region_count(), 2u);
}

TEST_F(MemoryTest, LocalCheckHappyPath) {
  const auto& mr = pd.Register(buf.get(), 1024, kAccessAll);
  EXPECT_EQ(pd.CheckLocal(base(), 1024, mr.lkey, kLocalRead), MemCheck::kOk);
  EXPECT_EQ(pd.CheckLocal(base() + 512, 512, mr.lkey, kLocalWrite),
            MemCheck::kOk);
}

TEST_F(MemoryTest, LocalCheckRejectsBadKey) {
  pd.Register(buf.get(), 1024, kAccessAll);
  EXPECT_EQ(pd.CheckLocal(base(), 8, 0xdead, kLocalRead), MemCheck::kBadKey);
}

// Deregistration blanks a region's keys to 0; sentinel-range "keys" must
// never resolve (a zero key would otherwise alias an empty table slot or
// the dead region) and double-deregistration must fail cleanly.
TEST_F(MemoryTest, SentinelAndBlankedKeysNeverResolve) {
  const auto a = pd.Register(buf.get(), 1024, kAccessAll);
  EXPECT_EQ(pd.CheckLocal(base(), 8, 0, kLocalRead), MemCheck::kBadKey);
  EXPECT_FALSE(pd.Deregister(0));
  ASSERT_TRUE(pd.Deregister(a.lkey));
  EXPECT_EQ(pd.region_count(), 0u);
  EXPECT_FALSE(pd.Deregister(a.lkey));  // already gone
  EXPECT_FALSE(pd.Deregister(0));       // the blanked key value
  EXPECT_EQ(pd.region_count(), 0u);
  EXPECT_EQ(pd.CheckLocal(base(), 8, 0, kLocalRead), MemCheck::kBadKey);
  EXPECT_EQ(pd.CheckLocal(base(), 8, a.lkey, kLocalRead), MemCheck::kBadKey);
}

TEST_F(MemoryTest, LocalCheckRejectsOutOfBounds) {
  const auto& mr = pd.Register(buf.get(), 1024, kAccessAll);
  EXPECT_EQ(pd.CheckLocal(base() + 1020, 8, mr.lkey, kLocalRead),
            MemCheck::kOutOfBounds);
  EXPECT_EQ(pd.CheckLocal(base() - 8, 8, mr.lkey, kLocalRead),
            MemCheck::kOutOfBounds);
}

TEST_F(MemoryTest, RemoteCheckUsesRkeyNotLkey) {
  const auto& mr = pd.Register(buf.get(), 1024, kAccessAll);
  EXPECT_EQ(pd.CheckRemote(base(), 8, mr.rkey, kRemoteWrite), MemCheck::kOk);
  EXPECT_EQ(pd.CheckRemote(base(), 8, mr.lkey, kRemoteWrite),
            MemCheck::kBadKey);
}

TEST_F(MemoryTest, PermissionBitsEnforced) {
  const auto& ro = pd.Register(buf.get(), 512, kLocalRead | kRemoteRead);
  EXPECT_EQ(pd.CheckRemote(base(), 8, ro.rkey, kRemoteRead), MemCheck::kOk);
  EXPECT_EQ(pd.CheckRemote(base(), 8, ro.rkey, kRemoteWrite),
            MemCheck::kNoPermission);
  EXPECT_EQ(pd.CheckRemote(base(), 8, ro.rkey, kRemoteAtomic),
            MemCheck::kNoPermission);
  EXPECT_EQ(pd.CheckLocal(base(), 8, ro.lkey, kLocalWrite),
            MemCheck::kNoPermission);
}

TEST_F(MemoryTest, DeregisterInvalidatesKeys) {
  const auto mr = pd.Register(buf.get(), 1024, kAccessAll);
  EXPECT_TRUE(pd.Deregister(mr.lkey));
  EXPECT_EQ(pd.CheckLocal(base(), 8, mr.lkey, kLocalRead), MemCheck::kBadKey);
  EXPECT_EQ(pd.CheckRemote(base(), 8, mr.rkey, kRemoteRead),
            MemCheck::kBadKey);
  EXPECT_FALSE(pd.Deregister(mr.lkey));
}

TEST_F(MemoryTest, ZeroLengthAccessInsideRegionIsOk) {
  const auto& mr = pd.Register(buf.get(), 1024, kAccessAll);
  EXPECT_EQ(pd.CheckLocal(base(), 0, mr.lkey, kLocalRead), MemCheck::kOk);
}

TEST_F(MemoryTest, ReregisterKeepsKeysAndAppliesNewBounds) {
  const auto mr = pd.Register(buf.get(), 1024, kAccessAll);
  ASSERT_TRUE(pd.Reregister(mr.lkey, buf.get(), 256, kAccessAll));
  EXPECT_EQ(pd.CheckLocal(base(), 256, mr.lkey, kLocalRead), MemCheck::kOk);
  EXPECT_EQ(pd.CheckLocal(base() + 256, 8, mr.lkey, kLocalRead),
            MemCheck::kOutOfBounds);
  EXPECT_EQ(pd.CheckRemote(base(), 8, mr.rkey, kRemoteWrite), MemCheck::kOk);
  EXPECT_EQ(pd.region_count(), 1u);
  // An rkey is not a rereg handle, and unknown keys fail cleanly.
  EXPECT_FALSE(pd.Reregister(mr.rkey, buf.get(), 64, kAccessAll));
  EXPECT_FALSE(pd.Reregister(0xdead, buf.get(), 64, kAccessAll));
}

// The MrCacheEntry regression the epoch tag exists for: a re-registration
// that keeps the same lkey/rkey values but shrinks the region must not be
// satisfied by a stale cached extent.
TEST_F(MemoryTest, ReregisterShrinkInvalidatesStaleExtentCache) {
  const auto mr = pd.Register(buf.get(), 1024, kAccessAll);
  MrCacheEntry cache;
  ASSERT_EQ(pd.CheckRemote(base(), 1024, mr.rkey, kRemoteWrite, &cache),
            MemCheck::kOk);
  EXPECT_EQ(cache.key, mr.rkey);
  EXPECT_EQ(cache.length, 1024u);
  ASSERT_TRUE(pd.Reregister(mr.lkey, buf.get(), 256, kAccessAll));
  // Same key value, smaller extent: the access beyond the new bounds must
  // fault even though (key, extent) in the cache would allow it.
  EXPECT_EQ(pd.CheckRemote(base() + 512, 8, mr.rkey, kRemoteWrite, &cache),
            MemCheck::kOutOfBounds);
  // The refreshed cache carries the new extent and keeps serving hits.
  EXPECT_EQ(pd.CheckRemote(base() + 128, 8, mr.rkey, kRemoteWrite, &cache),
            MemCheck::kOk);
  EXPECT_EQ(cache.length, 256u);
}

TEST_F(MemoryTest, DeregisterInvalidatesStaleCacheEntry) {
  const auto mr = pd.Register(buf.get(), 1024, kAccessAll);
  MrCacheEntry cache;
  ASSERT_EQ(pd.CheckLocal(base(), 8, mr.lkey, kLocalRead, &cache),
            MemCheck::kOk);
  ASSERT_TRUE(pd.Deregister(mr.lkey));
  EXPECT_EQ(pd.CheckLocal(base(), 8, mr.lkey, kLocalRead, &cache),
            MemCheck::kBadKey);
}

TEST_F(MemoryTest, CachedEntryStillEnforcesPermissions) {
  const auto ro = pd.Register(buf.get(), 512, kLocalRead | kRemoteRead);
  MrCacheEntry cache;
  ASSERT_EQ(pd.CheckRemote(base(), 8, ro.rkey, kRemoteRead, &cache),
            MemCheck::kOk);
  // Same key through the warm cache: rights are checked on every access.
  EXPECT_EQ(pd.CheckRemote(base(), 8, ro.rkey, kRemoteWrite, &cache),
            MemCheck::kNoPermission);
  EXPECT_EQ(pd.CheckRemote(base() + 508, 8, ro.rkey, kRemoteRead, &cache),
            MemCheck::kOutOfBounds);
}

TEST(MemoryRegion, ContainsHandlesEdges) {
  MemoryRegion mr;
  mr.addr = 1000;
  mr.length = 100;
  EXPECT_TRUE(mr.Contains(1000, 100));
  EXPECT_TRUE(mr.Contains(1099, 1));
  EXPECT_FALSE(mr.Contains(1099, 2));
  EXPECT_FALSE(mr.Contains(999, 1));
}

TEST(Dma, ReadWriteRoundTrip) {
  std::uint64_t word = 0;
  dma::WriteU64(dma::AddrOf(&word), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(word, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(dma::ReadU64(dma::AddrOf(&word)), 0xdeadbeefcafef00dULL);
  std::uint32_t half = 0;
  dma::WriteU32(dma::AddrOf(&half), 0x12345678u);
  EXPECT_EQ(dma::ReadU32(dma::AddrOf(&half)), 0x12345678u);
}

TEST(Dma, CopyHandlesOverlap) {
  char data[16] = "abcdefghijklmno";
  dma::Copy(dma::AddrOf(data + 2), dma::AddrOf(data), 8);
  EXPECT_EQ(data[2], 'a');
  EXPECT_EQ(data[9], 'h');
}

}  // namespace
}  // namespace redn::rnic
