// Property-based tests: randomized inputs checked against host-side
// reference implementations. Each property runs many trials with a
// deterministic seed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <unordered_map>

#include "offloads/hash_harness.h"
#include "offloads/recycled_loop.h"
#include "offloads/list_traversal.h"
#include "redn/mov.h"
#include "redn/program.h"
#include "sim/rng.h"
#include "testbed.h"

namespace redn::test {
namespace {

// ---------------------------------------------------------------------------
// Property: the NIC `if` agrees with the host `==` for random operands
// ---------------------------------------------------------------------------

std::uint64_t NicEqualIf(TestBed& bed, std::uint64_t x, std::uint64_t y) {
  core::Program prog(bed.server);
  rnic::QueuePair* chain = prog.NewChainQueue();
  Buffer data = bed.Alloc(bed.server, 16);
  data.SetU64(0, 1);
  verbs::SendWr cond = verbs::MakeWrite(data.addr(), 8, data.lkey(),
                                        data.addr() + 8, data.rkey());
  cond.opcode = rnic::Opcode::kNoop;
  cond.wr_id = x;
  core::WrRef t = prog.Post(chain, cond);
  rnic::QueuePair* trig = prog.NewPlainQueue();
  verbs::PostSend(trig, verbs::MakeNoop());
  prog.EmitEqualIf(trig->send_cq, 1, t, y, rnic::Opcode::kWrite);
  prog.Launch();
  verbs::RingDoorbell(trig);
  bed.sim.Run();
  return data.U64(1);
}

TEST(IfProperty, AgreesWithHostEqualityOnRandomOperands) {
  sim::Rng rng(2024);
  TestBed bed;
  for (int trial = 0; trial < 60; ++trial) {
    std::uint64_t x = rng.Next() & rnic::kWrIdMask;
    std::uint64_t y =
        rng.NextBool(0.5) ? x : (rng.Next() & rnic::kWrIdMask);
    const std::uint64_t got = NicEqualIf(bed, x, y);
    EXPECT_EQ(got, x == y ? 1u : 0u) << "x=" << x << " y=" << y;
  }
}

TEST(IfProperty, AdjacentOperandsNeverConfused) {
  // Off-by-one operands are the classic encoding failure; sweep a window.
  TestBed bed;
  for (std::uint64_t y = 1000; y < 1010; ++y) {
    EXPECT_EQ(NicEqualIf(bed, y, y), 1u);
    EXPECT_EQ(NicEqualIf(bed, y + 1, y), 0u);
    EXPECT_EQ(NicEqualIf(bed, y - 1, y), 0u);
  }
}

// ---------------------------------------------------------------------------
// Property: random mov programs match a host interpreter
// ---------------------------------------------------------------------------

TEST(MovProperty, RandomProgramsMatchInterpreter) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    TestBed bed;
    core::MovMachine m(bed.server, 6);
    constexpr int kCells = 16;
    const std::uint64_t cells = m.AllocCells(kCells);
    std::uint64_t ref_mem[kCells];
    std::uint64_t ref_reg[6] = {};
    for (int i = 0; i < kCells; ++i) {
      ref_mem[i] = rng.NextBelow(1000);
      m.SetCell(cells + i * 8, ref_mem[i]);
    }
    // r0..r2 data registers; r3 holds a cell pointer; r4 an offset.
    auto cell_addr = [&](int i) { return cells + i * 8; };
    ref_reg[3] = cell_addr(static_cast<int>(rng.NextBelow(kCells)));
    m.SetReg(3, ref_reg[3]);
    ref_reg[4] = 8 * rng.NextBelow(4);
    m.SetReg(4, ref_reg[4]);

    const int steps = 6;
    for (int s = 0; s < steps; ++s) {
      switch (rng.NextBelow(5)) {
        case 0: {  // immediate
          const std::uint64_t c = rng.NextBelow(500);
          const int rd = static_cast<int>(rng.NextBelow(3));
          m.MovImmediate(rd, c);
          ref_reg[rd] = c;
          break;
        }
        case 1: {  // reg-to-reg
          const int rd = static_cast<int>(rng.NextBelow(3));
          const int rs = static_cast<int>(rng.NextBelow(3));
          m.MovReg(rd, rs);
          ref_reg[rd] = ref_reg[rs];
          break;
        }
        case 2: {  // indirect load through r3
          const int rd = static_cast<int>(rng.NextBelow(3));
          m.MovIndirectLoad(rd, 3);
          ref_reg[rd] = ref_mem[(ref_reg[3] - cells) / 8];
          break;
        }
        case 3: {  // indexed load through r3 + r4
          const int rd = static_cast<int>(rng.NextBelow(3));
          // keep base + offset inside the cell array
          if ((ref_reg[3] - cells) / 8 + ref_reg[4] / 8 >= kCells) break;
          m.MovIndexedLoad(rd, 3, 4);
          ref_reg[rd] = ref_mem[(ref_reg[3] - cells + ref_reg[4]) / 8];
          break;
        }
        default: {  // store through r3
          const int rs = static_cast<int>(rng.NextBelow(3));
          m.MovIndirectStore(3, rs);
          ref_mem[(ref_reg[3] - cells) / 8] = ref_reg[rs];
          break;
        }
      }
    }
    m.Run();
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(m.Reg(r), ref_reg[r]) << "trial " << trial << " reg " << r;
    }
    for (int i = 0; i < kCells; ++i) {
      ASSERT_EQ(m.Cell(cells + i * 8), ref_mem[i])
          << "trial " << trial << " cell " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Property: offloaded hash gets agree with std::unordered_map
// ---------------------------------------------------------------------------

TEST(HashProperty, RandomWorkloadMatchesReferenceMap) {
  sim::Rng rng(4242);
  TestBed bed;
  offloads::HashGetHarness h(bed.client, bed.server,
                             {.buckets = 2, .max_requests = 300});
  std::unordered_map<std::uint64_t, std::uint32_t> ref;  // key -> len
  // Random inserts with varying sizes.
  for (int i = 0; i < 120; ++i) {
    const std::uint64_t key = 1 + rng.NextBelow(200);
    const std::uint32_t len = static_cast<std::uint32_t>(8 + rng.NextBelow(120));
    if (ref.count(key)) continue;  // harness Put has no in-place resize
    h.PutPattern(key, len);
    ref[key] = len;
  }
  h.Arm(260);
  // Random gets, present and absent keys.
  int hits = 0, misses = 0;
  for (int i = 0; i < 250; ++i) {
    const std::uint64_t key = 1 + rng.NextBelow(260);
    auto r = h.Get(key, sim::Micros(80));
    const auto it = ref.find(key);
    if (it != ref.end()) {
      ASSERT_TRUE(r.found) << "key " << key;
      EXPECT_EQ(r.len, it->second);
      EXPECT_TRUE(h.ResponseMatchesPattern(key, it->second));
      ++hits;
    } else {
      EXPECT_FALSE(r.found) << "key " << key;
      ++misses;
    }
  }
  EXPECT_GT(hits, 50);
  EXPECT_GT(misses, 20);
}

// ---------------------------------------------------------------------------
// Property: list traversal finds exactly the keys that are present
// ---------------------------------------------------------------------------

TEST(ListProperty, RandomListsAndProbes) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    TestBed bed;
    const int nodes = 2 + static_cast<int>(rng.NextBelow(7));  // 2..8
    offloads::ListStore list(bed.server, nodes + 1, 32);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < nodes; ++i) {
      const std::uint64_t key = 500 + rng.NextBelow(100);
      if (std::find(keys.begin(), keys.end(), key) != keys.end()) {
        list.AppendPattern(1000 + i);  // keep sizes aligned; unique key
        keys.push_back(1000 + i);
      } else {
        list.AppendPattern(key);
        keys.push_back(key);
      }
    }
    rnic::QpConfig s;
    s.sq_depth = 1 << 12;
    s.rq_depth = 256;
    s.managed = true;
    s.send_cq = bed.server.CreateCq();
    s.recv_cq = bed.server.CreateCq();
    rnic::QueuePair* srv = bed.server.CreateQp(s);
    rnic::QpConfig c;
    c.send_cq = bed.client.CreateCq();
    c.recv_cq = bed.client.CreateCq();
    rnic::QueuePair* cli = bed.client.CreateQp(c);
    rnic::Connect(cli, srv, rnic::Calibration{}.net_one_way);
    Buffer resp = bed.Alloc(bed.client, 32);
    Buffer msg = bed.Alloc(bed.client, 16 * 8);

    auto probe = [&](std::uint64_t key, bool use_break) {
      offloads::ListTraversalOffload off(
          bed.server, list, srv,
          {.iterations = nodes, .use_break = use_break}, resp.addr(),
          resp.rkey());
      verbs::RecvWr rwr;
      verbs::PostRecv(cli, rwr);
      off.BuildTrigger(key, msg.bytes());
      verbs::PostSendNow(cli, verbs::MakeSend(msg.addr(), off.TriggerBytes(),
                                              msg.lkey(), false));
      verbs::Cqe cqe;
      const bool found = verbs::AwaitCqe(bed.sim, bed.client, cli->recv_cq,
                                         &cqe,
                                         bed.sim.now() + sim::Micros(300));
      bed.sim.Run();
      return found;
    };

    for (int p = 0; p < 6; ++p) {
      const bool pick_present = rng.NextBool(0.6);
      const bool use_break = rng.NextBool(0.5);
      if (pick_present) {
        const std::uint64_t key = keys[rng.NextBelow(keys.size())];
        EXPECT_TRUE(probe(key, use_break)) << "trial " << trial;
      } else {
        EXPECT_FALSE(probe(77777, use_break)) << "trial " << trial;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property: recycled loops progress linearly in time
// ---------------------------------------------------------------------------

TEST(RecycleProperty, ProgressIsLinear) {
  TestBed bed;
  offloads::RecycledAddLoop loop(bed.server);
  loop.Start();
  std::uint64_t prev = 0;
  std::uint64_t first_delta = 0;
  for (int window = 1; window <= 5; ++window) {
    bed.sim.RunUntil(sim::Millis(window));
    const std::uint64_t now = loop.iterations();
    const std::uint64_t delta = now - prev;
    if (window == 1) {
      first_delta = delta;
    } else {
      EXPECT_NEAR(static_cast<double>(delta), static_cast<double>(first_delta),
                  first_delta * 0.2 + 2.0);
    }
    prev = now;
  }
}

}  // namespace
}  // namespace redn::test
