// Tests for the baseline systems: one-sided gets, two-sided RPC serving
// (polling/event/VMA), and the Memcached facade with failure injection.
#include <gtest/gtest.h>

#include "baseline/one_sided.h"
#include "sim/stats.h"
#include "baseline/two_sided.h"
#include "kv/memcached.h"
#include "testbed.h"

namespace redn::test {
namespace {

using baseline::OneSidedKvClient;
using baseline::TwoSidedKvClient;
using baseline::TwoSidedKvServer;

class BaselineTest : public ::testing::Test {
 protected:
  TestBed bed;
};

struct ServerRig {
  kv::RdmaHashTable table;
  kv::ValueHeap heap;
  TwoSidedKvServer server;

  ServerRig(TestBed& bed, TwoSidedKvServer::Mode mode)
      : table(bed.server, {.buckets = 1 << 12}),
        heap(bed.server, 64 << 20),
        server(bed.server, table, heap, mode) {}

  void Put(std::uint64_t key, std::uint32_t len) {
    std::vector<std::byte> v(len, static_cast<std::byte>(key & 0xff));
    table.Insert(key, heap.Store(v.data(), len), len);
  }
};

TEST_F(BaselineTest, TwoSidedGetReturnsValue) {
  ServerRig rig(bed, TwoSidedKvServer::Mode::kPolling);
  rig.Put(42, 64);
  TwoSidedKvClient client(bed.client, rig.server);
  auto r = client.Get(42);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.latency, 0);
  EXPECT_EQ(rig.server.gets_served(), 1u);
}

TEST_F(BaselineTest, TwoSidedSetInsertsKey) {
  ServerRig rig(bed, TwoSidedKvServer::Mode::kPolling);
  TwoSidedKvClient client(bed.client, rig.server);
  auto r = client.Set(7, 64);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(rig.table.Lookup(7).has_value());
  EXPECT_EQ(rig.server.sets_served(), 1u);
}

TEST_F(BaselineTest, PollingLatencyInExpectedBand) {
  // Fig 10 regime: two-sided polling gets land around 7-10 us at 64 B.
  ServerRig rig(bed, TwoSidedKvServer::Mode::kPolling);
  rig.Put(1, 64);
  TwoSidedKvClient client(bed.client, rig.server);
  auto r = client.Get(1);
  ASSERT_TRUE(r.ok);
  const double us = sim::ToMicros(r.latency);
  EXPECT_GT(us, 5.0);
  EXPECT_LT(us, 12.0);
}

TEST_F(BaselineTest, EventModeAddsWakeupLatency) {
  ServerRig pol(bed, TwoSidedKvServer::Mode::kPolling);
  pol.Put(1, 64);
  TwoSidedKvClient pc(bed.client, pol.server);
  const auto p = pc.Get(1);

  TestBed bed2;
  ServerRig evt(bed2, TwoSidedKvServer::Mode::kEvent);
  evt.Put(1, 64);
  TwoSidedKvClient ec(bed2.client, evt.server);
  const auto e = ec.Get(1);

  ASSERT_TRUE(p.ok && e.ok);
  EXPECT_GT(e.latency, p.latency + sim::Micros(10));
}

TEST_F(BaselineTest, VmaModeSlowerThanPlainPolling) {
  ServerRig pol(bed, TwoSidedKvServer::Mode::kPolling);
  pol.Put(1, 4096);
  TwoSidedKvClient pc(bed.client, pol.server);
  const auto p = pc.Get(1);

  TestBed bed2;
  ServerRig vma(bed2, TwoSidedKvServer::Mode::kVma);
  vma.Put(1, 4096);
  TwoSidedKvClient vc(bed2.client, vma.server);
  const auto v = vc.Get(1);

  ASSERT_TRUE(p.ok && v.ok);
  EXPECT_GT(v.latency, p.latency + sim::Micros(6));
}

TEST_F(BaselineTest, DeadServerDropsRequests) {
  ServerRig rig(bed, TwoSidedKvServer::Mode::kPolling);
  rig.Put(1, 64);
  rig.server.set_alive(false);
  TwoSidedKvClient client(bed.client, rig.server);
  auto r = client.Get(1, sim::Micros(200));
  EXPECT_FALSE(r.ok);
  rig.server.set_alive(true);
  r = client.Get(1);
  EXPECT_TRUE(r.ok);
}

TEST_F(BaselineTest, ContentionInflatesLatency) {
  ServerRig rig(bed, TwoSidedKvServer::Mode::kPolling);
  rig.Put(1, 64);
  TwoSidedKvClient client(bed.client, rig.server);
  const auto quiet = client.Get(1);

  // Synthetic contention: mark 16 writers (noise) — averages and especially
  // tails must grow. Sample several gets.
  rig.server.set_writers(16);
  sim::LatencyRecorder rec;
  for (int i = 0; i < 200; ++i) {
    auto r = client.Get(1, sim::Millis(50));
    ASSERT_TRUE(r.ok);
    rec.Add(r.latency);
  }
  ASSERT_TRUE(quiet.ok);
  EXPECT_GT(rec.PercentileNs(99), 3 * quiet.latency);
}

TEST_F(BaselineTest, OneSidedGetFindsValueInTwoReads) {
  kv::RdmaHashTable table(bed.server, {.buckets = 1 << 12});
  kv::ValueHeap heap(bed.server, 16 << 20);
  std::vector<std::byte> v(64, std::byte{0x7e});
  table.Insert(42, heap.Store(v.data(), 64), 64);

  OneSidedKvClient client(bed.client, bed.server, table, heap);
  auto r = client.Get(42);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.len, 64u);
  EXPECT_EQ(r.reads_issued, 2);  // neighbourhood + value
  // Two RTTs plus client software: well above one RTT, below two-sided+VMA.
  EXPECT_GT(sim::ToMicros(r.latency), 5.0);
  EXPECT_LT(sim::ToMicros(r.latency), 16.0);
}

TEST_F(BaselineTest, OneSidedFallsBackToSecondBucket) {
  kv::RdmaHashTable table(bed.server, {.buckets = 1 << 12});
  kv::ValueHeap heap(bed.server, 16 << 20);
  std::vector<std::byte> v(32, std::byte{0x11});
  table.Insert(55, heap.Store(v.data(), 32), 32, /*force_second=*/true);

  OneSidedKvClient client(bed.client, bed.server, table, heap);
  auto r = client.Get(55);
  // H2 may coincide with the H1 neighbourhood; usually it does not.
  ASSERT_TRUE(r.found);
  EXPECT_GE(r.reads_issued, 2);
  EXPECT_LE(r.reads_issued, 3);
}

TEST_F(BaselineTest, OneSidedMissReturnsNotFound) {
  kv::RdmaHashTable table(bed.server, {.buckets = 1 << 12});
  kv::ValueHeap heap(bed.server, 16 << 20);
  OneSidedKvClient client(bed.client, bed.server, table, heap);
  EXPECT_FALSE(client.Get(123).found);
}

TEST_F(BaselineTest, MemcachedFacadeServesAndCrashes) {
  kv::MemcachedServer::Config cfg;
  cfg.rpc_mode = TwoSidedKvServer::Mode::kPolling;
  cfg.restart_time = sim::Millis(10);
  cfg.rebuild_per_item = sim::Micros(10);
  kv::MemcachedServer mc(bed.server, cfg);
  mc.SetPattern(5, 64);
  TwoSidedKvClient client(bed.client, mc.rpc());
  EXPECT_TRUE(client.Get(5).ok);

  mc.CrashProcess();
  EXPECT_FALSE(mc.process_alive());
  EXPECT_FALSE(client.Get(5, sim::Micros(300)).ok);

  // After restart + rebuild the server answers again.
  bed.sim.RunUntil(bed.sim.now() + sim::Millis(15));
  EXPECT_TRUE(mc.process_alive());
  EXPECT_TRUE(client.Get(5).ok);
}

TEST_F(BaselineTest, MemcachedRebuildScalesWithItems) {
  kv::MemcachedServer::Config cfg;
  cfg.rpc_mode = TwoSidedKvServer::Mode::kPolling;
  cfg.restart_time = sim::Millis(1);
  cfg.rebuild_per_item = sim::Micros(100);
  kv::MemcachedServer mc(bed.server, cfg);
  for (int k = 1; k <= 1000; ++k) mc.SetPattern(k, 8);
  const sim::Nanos t0 = bed.sim.now();
  mc.CrashProcess();
  while (!mc.process_alive()) {
    if (!bed.sim.Step()) break;
  }
  const sim::Nanos downtime = bed.sim.now() - t0;
  // 1 ms restart + 1000 * 100 us rebuild = ~101 ms.
  EXPECT_NEAR(sim::ToSeconds(downtime), 0.101, 0.01);
}

TEST_F(BaselineTest, MemcachedSetUpdatesInPlace) {
  kv::MemcachedServer mc(bed.server, {});
  mc.SetPattern(9, 64);
  const auto before = mc.table().Lookup(9);
  mc.SetPattern(9, 64);
  const auto after = mc.table().Lookup(9);
  ASSERT_TRUE(before && after);
  EXPECT_EQ(before->ptr, after->ptr);  // no heap leak on update
}

}  // namespace
}  // namespace redn::test
