// Parameterized sweeps: data integrity and timing monotonicity across
// payload sizes, opcodes, NIC generations, and ports.
#include <gtest/gtest.h>

#include <tuple>

#include "testbed.h"

namespace redn::test {
namespace {

using verbs::AwaitCqe;
using verbs::Cqe;

// ---------------------------------------------------------------------------
// Payload-size sweep for WRITE / READ / SEND
// ---------------------------------------------------------------------------

class SizeSweep : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {
 protected:
  TestBed bed;
};

TEST_P(SizeSweep, DataIntegrityAcrossSizes) {
  const auto [op, len] = GetParam();
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, len);
  Buffer dst = bed.Alloc(bed.server, len);
  for (std::uint32_t i = 0; i < len; ++i) {
    src.data[i] = static_cast<std::byte>((i * 7 + 3) & 0xff);
  }

  Cqe cqe;
  if (op == 0) {  // WRITE
    verbs::PostSendNow(cqp, verbs::MakeWrite(src.addr(), len, src.lkey(),
                                             dst.addr(), dst.rkey()));
    ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
    EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
    EXPECT_EQ(std::memcmp(src.data.get(), dst.data.get(), len), 0);
  } else if (op == 1) {  // READ (server holds the pattern)
    std::memcpy(dst.data.get(), src.data.get(), len);
    std::memset(src.data.get(), 0, len);
    verbs::PostSendNow(cqp, verbs::MakeRead(src.addr(), len, src.lkey(),
                                            dst.addr(), dst.rkey()));
    ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
    EXPECT_EQ(cqe.byte_len, len);
    for (std::uint32_t i = 0; i < len; ++i) {
      ASSERT_EQ(src.data[i], static_cast<std::byte>((i * 7 + 3) & 0xff));
    }
  } else {  // SEND
    verbs::RecvWr rwr;
    rwr.local_addr = dst.addr();
    rwr.length = len;
    rwr.lkey = dst.lkey();
    verbs::PostRecv(sqp, rwr);
    verbs::PostSendNow(cqp, verbs::MakeSend(src.addr(), len, src.lkey()));
    ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe));
    EXPECT_EQ(cqe.byte_len, len);
    EXPECT_EQ(std::memcmp(src.data.get(), dst.data.get(), len), 0);
  }
}

std::string SizeSweepName(
    const ::testing::TestParamInfo<std::tuple<int, std::uint32_t>>& info) {
  static const char* kOps[3] = {"Write", "Read", "Send"};
  return std::string(kOps[std::get<0>(info.param)]) + "_" +
         std::to_string(std::get<1>(info.param)) + "B";
}

INSTANTIATE_TEST_SUITE_P(
    WriteReadSend, SizeSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 8u, 64u, 333u, 1024u, 4096u,
                                         65536u)),
    SizeSweepName);

// ---------------------------------------------------------------------------
// Latency grows monotonically with payload size
// ---------------------------------------------------------------------------

TEST(SizeLatency, WriteLatencyMonotonic) {
  sim::Nanos prev = 0;
  for (std::uint32_t len : {64u, 1024u, 16384u, 65536u}) {
    TestBed bed;
    auto [cqp, sqp] = bed.ConnectedPair();
    Buffer src = bed.Alloc(bed.client, len);
    Buffer dst = bed.Alloc(bed.server, len);
    const sim::Nanos t0 = bed.sim.now();
    verbs::PostSendNow(cqp, verbs::MakeWrite(src.addr(), len, src.lkey(),
                                             dst.addr(), dst.rkey()));
    Cqe cqe;
    ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
    const sim::Nanos lat = bed.sim.now() - t0;
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

// ---------------------------------------------------------------------------
// Generation sweep: PU scaling is visible in pipelined chains
// ---------------------------------------------------------------------------

class GenerationSweep : public ::testing::TestWithParam<int> {};

TEST_P(GenerationSweep, MoreQueuesMorePusMoreParallelism) {
  const int gen = GetParam();
  rnic::NicConfig cfg = gen == 3   ? rnic::NicConfig::ConnectX3()
                        : gen == 5 ? rnic::NicConfig::ConnectX5()
                                   : rnic::NicConfig::ConnectX6();
  sim::Simulator sim;
  rnic::RnicDevice dev(sim, cfg, cfg.Calibrated(), "dev");
  // One loopback queue per PU, 64 NOOPs each: wall time should be ~one
  // queue's worth regardless of PU count (queues run on distinct PUs).
  std::vector<rnic::QueuePair*> qps;
  for (int q = 0; q < cfg.pus_per_port; ++q) {
    rnic::QpConfig c;
    c.sq_depth = 128;
    c.send_cq = dev.CreateCq();
    c.recv_cq = dev.CreateCq();
    rnic::QueuePair* qp = dev.CreateQp(c);
    rnic::ConnectSelf(qp);
    qps.push_back(qp);
  }
  for (auto* qp : qps) {
    for (int i = 0; i < 64; ++i) verbs::PostSend(qp, verbs::MakeNoop());
    verbs::RingDoorbell(qp);
  }
  sim.Run();
  const double us = sim::ToMicros(sim.now());
  const double one_queue_us = 0.96 + 63 * 0.17;
  EXPECT_LT(us, one_queue_us * 1.5) << "queues must run in parallel on PUs";
}

INSTANTIATE_TEST_SUITE_P(AllGenerations, GenerationSweep,
                         ::testing::Values(3, 5, 6));

// ---------------------------------------------------------------------------
// Dual-port isolation: traffic on port 0 does not slow port 1
// ---------------------------------------------------------------------------

TEST(DualPort, PortsHaveIndependentResources) {
  sim::Simulator sim;
  rnic::RnicDevice dev(sim, rnic::NicConfig::ConnectX5(/*ports=*/2), {}, "d");
  auto run_chain = [&](int port) {
    rnic::QpConfig c;
    c.sq_depth = 4096;
    c.port = port;
    c.managed = true;
    c.send_cq = dev.CreateCq();
    c.recv_cq = dev.CreateCq();
    rnic::QueuePair* chain = dev.CreateQp(c);
    rnic::ConnectSelf(chain);
    rnic::QpConfig cc;
    cc.sq_depth = 4096;
    cc.port = port;
    cc.send_cq = dev.CreateCq();
    cc.recv_cq = dev.CreateCq();
    rnic::QueuePair* ctrl = dev.CreateQp(cc);
    rnic::ConnectSelf(ctrl);
    const int n = 200;
    for (int i = 0; i < n; ++i) verbs::PostSend(chain, verbs::MakeNoop());
    for (int i = 0; i < n; ++i) {
      if (i > 0) verbs::PostSend(ctrl, verbs::MakeWait(chain->send_cq, i));
      verbs::PostSend(ctrl, verbs::MakeEnable(chain, i + 1));
    }
    verbs::RingDoorbell(ctrl);
  };
  // Port 0 alone.
  run_chain(0);
  sim.Run();
  const sim::Nanos solo = sim.now();
  // Both ports together, fresh device.
  sim::Simulator sim2;
  rnic::RnicDevice dev2(sim2, rnic::NicConfig::ConnectX5(2), {}, "d2");
  {
    auto run2 = [&](int port) {
      rnic::QpConfig c;
      c.sq_depth = 4096;
      c.port = port;
      c.managed = true;
      c.send_cq = dev2.CreateCq();
      c.recv_cq = dev2.CreateCq();
      rnic::QueuePair* chain = dev2.CreateQp(c);
      rnic::ConnectSelf(chain);
      rnic::QpConfig cc;
      cc.sq_depth = 4096;
      cc.port = port;
      cc.send_cq = dev2.CreateCq();
      cc.recv_cq = dev2.CreateCq();
      rnic::QueuePair* ctrl = dev2.CreateQp(cc);
      rnic::ConnectSelf(ctrl);
      const int n = 200;
      for (int i = 0; i < n; ++i) verbs::PostSend(chain, verbs::MakeNoop());
      for (int i = 0; i < n; ++i) {
        if (i > 0) verbs::PostSend(ctrl, verbs::MakeWait(chain->send_cq, i));
        verbs::PostSend(ctrl, verbs::MakeEnable(chain, i + 1));
      }
      verbs::RingDoorbell(ctrl);
    };
    run2(0);
    run2(1);
    sim2.Run();
  }
  // Dual-port run should take about as long as solo (fetch units per port),
  // not 2x.
  EXPECT_LT(sim2.now(), solo * 3 / 2);
}

// ---------------------------------------------------------------------------
// Atomic sweep: ADD accumulates correctly for many operand patterns
// ---------------------------------------------------------------------------

class AtomicSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  TestBed bed;
};

TEST_P(AtomicSweep, FetchAddWrapsModulo64) {
  const std::uint64_t addend = GetParam();
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer word = bed.Alloc(bed.server, 8);
  word.SetU64(0, ~std::uint64_t{0} - 2);  // near wrap
  verbs::PostSendNow(cqp, verbs::MakeFetchAdd(word.addr(), word.rkey(),
                                              addend));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(word.U64(0), (~std::uint64_t{0} - 2) + addend);  // mod 2^64
}

INSTANTIATE_TEST_SUITE_P(Addends, AtomicSweep,
                         ::testing::Values(0u, 1u, 3u, 0xffffffffull,
                                           ~std::uint64_t{0}));

// ---------------------------------------------------------------------------
// CAS truth table across operand patterns
// ---------------------------------------------------------------------------

struct CasCase {
  std::uint64_t initial, compare, swap;
};

class CasSweep : public ::testing::TestWithParam<CasCase> {
 protected:
  TestBed bed;
};

TEST_P(CasSweep, SwapsExactlyOnEquality) {
  const CasCase c = GetParam();
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer word = bed.Alloc(bed.server, 8);
  Buffer result = bed.Alloc(bed.client, 8);
  word.SetU64(0, c.initial);
  verbs::PostSendNow(cqp, verbs::MakeCas(word.addr(), word.rkey(), c.compare,
                                         c.swap, result.addr(), result.lkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(result.U64(0), c.initial);  // old value always returned
  if (c.initial == c.compare) {
    EXPECT_EQ(word.U64(0), c.swap);
  } else {
    EXPECT_EQ(word.U64(0), c.initial);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TruthTable, CasSweep,
    ::testing::Values(CasCase{0, 0, 1}, CasCase{5, 5, 9}, CasCase{5, 6, 9},
                      CasCase{~0ull, ~0ull, 0}, CasCase{1ull << 63, 0, 7},
                      CasCase{rnic::PackCtrl(rnic::Opcode::kNoop, 42),
                              rnic::PackCtrl(rnic::Opcode::kNoop, 42),
                              rnic::PackCtrl(rnic::Opcode::kWrite, 42)}));

}  // namespace
}  // namespace redn::test
