// Quickstart: bring up two simulated nodes, run plain RDMA verbs, then a
// first self-modifying RedN program (the Fig 4 conditional).
//
//   $ ./examples/quickstart
//
// Walks through:
//   1. devices, queue pairs, registered memory
//   2. a remote WRITE and READ with completions
//   3. a NIC-resident `if (x == y)` that rewrites its own instruction stream
#include <cstdio>
#include <memory>

#include "redn/program.h"
#include "rnic/device.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

int main() {
  // 1. Topology: a client and a server NIC on a back-to-back link.
  sim::Simulator sim;
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  rnic::QpConfig ccfg;
  ccfg.send_cq = client.CreateCq();
  ccfg.recv_cq = client.CreateCq();
  rnic::QueuePair* cqp = client.CreateQp(ccfg);
  rnic::QpConfig scfg;
  scfg.send_cq = server.CreateCq();
  scfg.recv_cq = server.CreateCq();
  rnic::QueuePair* sqp = server.CreateQp(scfg);
  rnic::Connect(cqp, sqp, rnic::Calibration{}.net_one_way);

  auto cbuf = std::make_unique<std::byte[]>(4096);
  auto sbuf = std::make_unique<std::byte[]>(4096);
  const rnic::MemoryRegion cmr =
      client.pd().Register(cbuf.get(), 4096, rnic::kAccessAll);
  const rnic::MemoryRegion smr =
      server.pd().Register(sbuf.get(), 4096, rnic::kAccessAll);

  // 2. A remote WRITE, then a READ back.
  rnic::dma::WriteU64(cmr.addr, 0xfeedface);
  verbs::PostSendNow(cqp, verbs::MakeWrite(cmr.addr, 8, cmr.lkey, smr.addr,
                                           smr.rkey));
  verbs::Cqe cqe;
  verbs::AwaitCqe(sim, client, cqp->send_cq, &cqe);
  std::printf("WRITE completed: status=%s, server word=%#llx, t=%.2f us\n",
              rnic::WcStatusName(cqe.status),
              static_cast<unsigned long long>(rnic::dma::ReadU64(smr.addr)),
              sim::ToMicros(sim.now()));

  verbs::PostSendNow(cqp, verbs::MakeRead(cmr.addr + 8, 8, cmr.lkey, smr.addr,
                                          smr.rkey));
  verbs::AwaitCqe(sim, client, cqp->send_cq, &cqe);
  std::printf("READ completed: local copy=%#llx\n",
              static_cast<unsigned long long>(rnic::dma::ReadU64(cmr.addr + 8)));

  // 3. The Fig 4 conditional, entirely on the server NIC: if (x == y) the
  // CAS rewrites a NOOP into a WRITE that stores 1 into `answer`.
  auto run_if = [&](std::uint64_t x, std::uint64_t y) {
    core::Program prog(server);
    rnic::QueuePair* chain = prog.NewChainQueue();
    rnic::dma::WriteU64(smr.addr + 64, 1);  // constant 1
    rnic::dma::WriteU64(smr.addr + 72, 0);  // answer

    verbs::SendWr cond = verbs::MakeWrite(smr.addr + 64, 8, smr.lkey,
                                          smr.addr + 72, smr.rkey);
    cond.opcode = rnic::Opcode::kNoop;  // disabled until the CAS matches
    cond.wr_id = x;                     // the id field carries the operand
    core::WrRef target = prog.Post(chain, cond);

    rnic::QueuePair* trig = prog.NewPlainQueue();
    verbs::PostSend(trig, verbs::MakeNoop());
    prog.EmitEqualIf(trig->send_cq, 1, target, y, rnic::Opcode::kWrite);
    prog.Launch();
    verbs::RingDoorbell(trig);
    sim.Run();
    return rnic::dma::ReadU64(smr.addr + 72);
  };

  std::printf("NIC-evaluated if(5 == 5) -> %llu (expect 1)\n",
              static_cast<unsigned long long>(run_if(5, 5)));
  std::printf("NIC-evaluated if(5 == 7) -> %llu (expect 0)\n",
              static_cast<unsigned long long>(run_if(5, 7)));
  std::printf("done in %.2f us simulated, %llu events\n",
              sim::ToMicros(sim.now()),
              static_cast<unsigned long long>(sim.events_processed()));
  return 0;
}
