// Failure resiliency demo (paper §5.6): kill the Memcached process mid-run
// and watch NIC-served gets continue while the two-sided service collapses.
#include <cstdio>

#include "sim/stats.h"
#include "workload/experiments.h"

using namespace redn;

namespace {

void Plot(const char* name, const workload::FailoverResult& r) {
  std::printf("%s (outage %.2f s, served %llu/%llu)\n", name,
              r.outage_seconds, static_cast<unsigned long long>(r.served),
              static_cast<unsigned long long>(r.sent));
  for (std::size_t b = 0; b < r.normalized.size(); b += 4) {
    const int width = static_cast<int>(r.normalized[b] * 30 + 0.5);
    std::printf("  t=%4.1fs |%-30.*s|\n", 0.25 * static_cast<double>(b), width,
                "##############################");
  }
}

}  // namespace

int main() {
  workload::FailoverConfig cfg;
  cfg.rate_per_sec = 500;
  cfg.horizon = sim::Seconds(10);
  cfg.crash_at = sim::Seconds(4);
  cfg.keys = 4000;

  std::printf("killing the Memcached process at t = 4 s...\n\n");

  cfg.redn = false;
  Plot("vanilla Memcached (two-sided RPC)", workload::RunFailover(cfg));

  cfg.redn = true;
  cfg.hull_parent = true;
  Plot("\nRedN offload, RDMA resources owned by empty-hull parent",
       workload::RunFailover(cfg));

  cfg.hull_parent = false;
  cfg.horizon = sim::Seconds(8);
  Plot("\nRedN offload, resources owned by the crashed process (ablation)",
       workload::RunFailover(cfg));

  std::printf("\nthe fork/empty-hull trick (§5.6) is what keeps chains alive "
              "past the process exit.\n");
  return 0;
}
