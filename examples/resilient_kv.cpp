// Failure resiliency demo: a sharded multi-tenant KV service loses a shard
// mid-run. With the pre-installed client-NIC failover chain (RedN WAIT +
// ENABLE, paper §5.6 generalized to chain replication) the dead shard's
// gets detour to the chain successor with a blip of tens of microseconds;
// the host-reissue baseline waits out its multi-RTO RPC timer first.
// Same seed, same fault plan — only the failover mechanism differs.
#include <cstdio>

#include "sim/time.h"
#include "workload/kv_service.h"

using namespace redn;

namespace {

void Report(const char* name, const workload::KvServiceResult& r) {
  std::printf("%s\n", name);
  std::printf("  gets %llu (unanswered %llu)  avg %.2f us  p99 %.2f us  "
              "p999 %.2f us\n",
              static_cast<unsigned long long>(r.gets),
              static_cast<unsigned long long>(r.unanswered), r.avg_us,
              r.p99_us, r.p999_us);
  std::printf("  worst per-tenant blip %.1f us   detours %llu   reroutes "
              "%llu   host reissues %llu\n",
              r.max_blip_us,
              static_cast<unsigned long long>(r.detour_responses),
              static_cast<unsigned long long>(r.reroutes),
              static_cast<unsigned long long>(r.host_reissues));
  for (std::size_t t = 0; t < r.tenants.size(); ++t) {
    const auto& ten = r.tenants[t];
    // Scale: one '#' per 100 us of worst blip, so the host baseline's
    // multi-RTO stall dwarfs the offloaded detour visually too.
    const int width = static_cast<int>(ten.max_blip_us / 100.0 + 0.999);
    std::printf("  tenant %zu p999 %8.2f us  blip %8.1f us |%-42.*s|\n", t,
                ten.p999_us, ten.max_blip_us, width > 42 ? 42 : width,
                "##########################################");
  }
}

}  // namespace

int main() {
  workload::KvServiceConfig cfg;
  cfg.shards = 4;
  cfg.tenants = 4;
  cfg.gets_per_tenant = 120;
  cfg.keys = 100'000;

  // Kill shard 1 outright at t = 60 us: the process dies, its QPs error,
  // and — the nasty case — any response it had in flight is silently
  // flushed. No heal: crashed shards stay dead.
  workload::FaultEntry crash;
  crash.server = 1;
  crash.kind = workload::FaultKind::kCrash;
  crash.down_at = sim::Micros(60);
  cfg.faults.entries.push_back(crash);

  std::printf("4 shards x 4 tenants, %d keys on a consistent-hash ring, "
              "each key on its primary + chain successor.\n",
              cfg.keys);
  std::printf("killing shard 1 at t = 60 us...\n\n");

  cfg.policy = workload::FailoverPolicy::kOffloadChain;
  Report("offloaded failover (client-NIC WAIT/ENABLE detour chain)",
         RunKvService(cfg));

  std::printf("\n");
  cfg.policy = workload::FailoverPolicy::kHostReissue;
  Report("host baseline (application RPC timer + CPU re-issue)",
         RunKvService(cfg));

  std::printf(
      "\nthe detour chain was parked on the client NIC before the fault: the\n"
      "failure CQE (dead-peer NAK, or a keepalive probe's NAK for the\n"
      "silently-flushed case) releases an already-built get against the\n"
      "backup shard with zero host involvement. docs/KV.md has the timeline.\n");
  return 0;
}
