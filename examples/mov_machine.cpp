// The Turing-completeness demo (paper Appendix A): run programs written in
// nothing but mov instructions — executed entirely by the NIC.
//
//   1. a pointer-chasing program (indirect addressing)
//   2. a DFA over an input tape via table lookups (indexed addressing) —
//      Dolan's construction in miniature
//   3. nontermination: a WQ-recycled loop that runs with zero CPU
#include <cstdio>

#include "offloads/recycled_loop.h"
#include "redn/mov.h"
#include "sim/simulator.h"

using namespace redn;

int main() {
  sim::Simulator sim;
  rnic::RnicDevice dev(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  // --- 1. pointer chasing -------------------------------------------------
  {
    core::MovMachine m(dev, 8);
    const std::uint64_t cells = m.AllocCells(3);
    m.SetCell(cells + 0, cells + 8);   // c0 -> &c1
    m.SetCell(cells + 8, cells + 16);  // c1 -> &c2
    m.SetCell(cells + 16, 777);        // c2 = 777
    m.SetReg(1, cells);
    m.MovIndirectLoad(2, 1);  // R2 = [R1]   = &c1
    m.MovIndirectLoad(3, 2);  // R3 = [R2]   = &c2
    m.MovIndirectLoad(4, 3);  // R4 = [R3]   = 777
    const sim::Nanos t = m.Run();
    std::printf("pointer chase: [[[c0]]] = %llu (expect 777), %d instrs in "
                "%.2f us\n",
                static_cast<unsigned long long>(m.Reg(4)),
                m.instruction_count(), sim::ToMicros(t));
  }

  // --- 2. a DFA in mov: parity of a bit string ----------------------------
  {
    core::MovMachine m(dev, 8);
    // T[state][bit]: 2 states x 2 inputs.
    const std::uint64_t table = m.AllocCells(4);
    m.SetCell(table + 0, 0);
    m.SetCell(table + 8, 1);
    m.SetCell(table + 16, 1);
    m.SetCell(table + 24, 0);
    m.SetReg(0, 0);      // state
    m.SetReg(1, table);  // base
    const int tape[] = {1, 0, 1, 1, 1};
    int expect = 0;
    for (int bit : tape) {
      expect ^= bit;
      // offset register = state*16 + bit*8, staged between steps (the
      // fully-NIC-resident scaling uses more lookup tables; see mov_test).
      m.SetReg(2, m.Reg(0) * 16 + bit * 8);
      m.MovIndexedLoad(0, 1, 2);
      m.Run();
    }
    std::printf("mov-machine DFA over 10111: parity = %llu (expect %d)\n",
                static_cast<unsigned long long>(m.Reg(0)), expect);
  }

  // --- 3. nontermination without a CPU ------------------------------------
  {
    offloads::RecycledAddLoop loop(dev);
    loop.Start();
    sim.RunUntil(sim.now() + sim::Millis(5));
    const auto n1 = loop.iterations();
    sim.RunUntil(sim.now() + sim::Millis(5));
    std::printf("WQ-recycled loop: %llu then %llu iterations — the NIC keeps "
                "going; only a rate limiter or teardown stops it\n",
                static_cast<unsigned long long>(n1),
                static_cast<unsigned long long>(loop.iterations()));
    loop.Kill();
  }
  std::printf("T1 (memory) + T2 (conditionals) + T3 (loops) => RDMA is "
              "Turing complete.\n");
  return 0;
}
