// Offloaded key-value store (the paper's Memcached use case, §5.4).
//
// Stores a handful of keys, arms RedN get-chains, and serves lookups with
// zero server CPU involvement — then runs the same gets through the
// two-sided RPC baseline for comparison.
#include <cstdio>
#include <cstring>

#include "baseline/two_sided.h"
#include "kv/memcached.h"
#include "offloads/hash_harness.h"
#include "sim/simulator.h"

using namespace redn;

int main() {
  sim::Simulator sim;
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  // RedN-served store: chains pre-posted for 32 gets.
  offloads::HashGetHarness store(client, server,
                                 {.buckets = 2, .max_requests = 64});
  const char* fruits[] = {"apple", "banana", "cherry", "dragonfruit"};
  for (std::uint64_t k = 0; k < 4; ++k) {
    store.Put(100 + k, fruits[k],
              static_cast<std::uint32_t>(std::strlen(fruits[k]) + 1));
  }
  store.Arm(32);

  std::printf("NIC-served gets (server CPU idle):\n");
  for (std::uint64_t k = 0; k < 4; ++k) {
    auto r = store.Get(100 + k);
    std::printf("  get(%llu) -> %-12s  (%u bytes, %.2f us)\n",
                static_cast<unsigned long long>(100 + k),
                r.found ? reinterpret_cast<const char*>(store.resp_buffer_addr())
                        : "<miss>",
                r.len, sim::ToMicros(r.latency));
  }
  auto miss = store.Get(999, sim::Micros(60));
  std::printf("  get(999) -> %s\n", miss.found ? "??" : "<miss>");

  // Baseline: the same store served by the CPU over two-sided RPC.
  kv::MemcachedServer mc(server,
                         {.rpc_mode = baseline::TwoSidedKvServer::Mode::kPolling});
  for (std::uint64_t k = 0; k < 4; ++k) {
    mc.Set(100 + k, fruits[k],
           static_cast<std::uint32_t>(std::strlen(fruits[k]) + 1));
  }
  baseline::TwoSidedKvClient rpc(client, mc.rpc());
  std::printf("CPU-served gets (two-sided RPC):\n");
  for (std::uint64_t k = 0; k < 4; ++k) {
    auto r = rpc.Get(100 + k);
    std::printf("  get(%llu) -> ok=%d (%.2f us)\n",
                static_cast<unsigned long long>(100 + k), r.ok,
                sim::ToMicros(r.latency));
  }
  std::printf("server handled %llu RPC gets; the offloaded path needed 0\n",
              static_cast<unsigned long long>(mc.rpc().gets_served()));
  return 0;
}
