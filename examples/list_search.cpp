// NIC-resident linked-list search (the paper's §5.3 offload): the RNIC
// walks a remote list, compares keys with CAS, and WRITEs the matching
// value back — with and without `break`.
#include <cstdio>
#include <memory>

#include "offloads/list_traversal.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

int main() {
  sim::Simulator sim;
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  offloads::ListStore list(server, 9, /*value_len=*/64);
  for (int i = 0; i < 8; ++i) list.AppendPattern(200 + i);

  rnic::QpConfig s;
  s.sq_depth = 1 << 12;
  s.rq_depth = 1 << 12;
  s.managed = true;
  s.send_cq = server.CreateCq();
  s.recv_cq = server.CreateCq();
  rnic::QueuePair* srv = server.CreateQp(s);
  rnic::QpConfig c;
  c.send_cq = client.CreateCq();
  c.recv_cq = client.CreateCq();
  rnic::QueuePair* cli = client.CreateQp(c);
  rnic::Connect(cli, srv, rnic::Calibration{}.net_one_way);

  auto buf = std::make_unique<std::byte[]>(4096);
  const rnic::MemoryRegion mr =
      client.pd().Register(buf.get(), 4096, rnic::kAccessAll);

  auto search = [&](std::uint64_t key, bool use_break) {
    const auto wrs_before = server.counters().TotalExecuted();
    offloads::ListTraversalOffload off(
        server, list, srv, {.iterations = 8, .use_break = use_break},
        mr.addr + 1024, mr.rkey);
    verbs::RecvWr rwr;
    verbs::PostRecv(cli, rwr);
    off.BuildTrigger(key, buf.get());
    const sim::Nanos t0 = sim.now();
    verbs::PostSendNow(cli, verbs::MakeSend(mr.addr, off.TriggerBytes(),
                                            mr.lkey, /*signaled=*/false));
    verbs::Cqe cqe;
    const bool found = verbs::AwaitCqe(sim, client, cli->recv_cq, &cqe,
                                       sim.now() + sim::Micros(300));
    const sim::Nanos lat = sim.now() - t0;
    sim.Run();  // drain remaining iterations before the chain is torn down
    std::printf("  key %llu %-9s: %s in %.2f us, %llu WRs executed\n",
                static_cast<unsigned long long>(key),
                use_break ? "(+break)" : "", found ? "found" : "missing",
                sim::ToMicros(lat),
                static_cast<unsigned long long>(server.counters().TotalExecuted() -
                                                wrs_before));
  };

  std::printf("searching an 8-node remote list on the NIC:\n");
  search(200, false);  // head
  search(207, false);  // tail: all iterations needed either way
  search(200, true);   // head with break: the chain stops after 1 READ
  search(207, true);   // tail with break
  search(999, false);  // miss
  return 0;
}
