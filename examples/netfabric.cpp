// Fabric quickstart: three NICs on a shared switch, one congested link.
//
//   $ ./examples/netfabric
//
// Walks through:
//   1. a sim::Fabric with per-port links (bandwidth + propagation)
//   2. attaching devices and connecting QPs over the fabric
//   3. two clients writing to one server at the same instant — the second
//      transfer queues on the server's RX link (contention the per-QP
//      constant-latency wire cannot express)
#include <cstdio>
#include <memory>

#include "rnic/device.h"
#include "sim/fabric.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

int main() {
  // 1. The switch: every port gets a full-duplex 25 Gbps cable with 125 ns
  //    of propagation to the switch.
  sim::Simulator sim;
  sim::Fabric fabric(/*switch_latency=*/0);
  const sim::LinkSpec link{25.0, 125};

  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  rnic::RnicDevice c1(sim, rnic::NicConfig::ConnectX5(), {}, "client1");
  rnic::RnicDevice c2(sim, rnic::NicConfig::ConnectX5(), {}, "client2");
  server.AttachPort(0, fabric, link);
  c1.AttachPort(0, fabric, link);
  c2.AttachPort(0, fabric, link);

  // 2. QPs connect over the fabric instead of a private wire.
  auto make_qp = [](rnic::RnicDevice& dev) {
    rnic::QpConfig cfg;
    cfg.send_cq = dev.CreateCq();
    cfg.recv_cq = dev.CreateCq();
    return dev.CreateQp(cfg);
  };
  rnic::QueuePair* q1 = make_qp(c1);
  rnic::QueuePair* q2 = make_qp(c2);
  rnic::QueuePair* s1 = make_qp(server);
  rnic::QueuePair* s2 = make_qp(server);
  rnic::ConnectOverFabric(q1, s1);
  rnic::ConnectOverFabric(q2, s2);

  constexpr std::size_t kLen = 64 << 10;  // 64 KiB ~= 21 us at 25 Gbps
  auto b1 = std::make_unique<std::byte[]>(kLen);
  auto b2 = std::make_unique<std::byte[]>(kLen);
  auto sb = std::make_unique<std::byte[]>(2 * kLen);
  const auto m1 = c1.pd().Register(b1.get(), kLen, rnic::kAccessAll);
  const auto m2 = c2.pd().Register(b2.get(), kLen, rnic::kAccessAll);
  const auto ms = server.pd().Register(sb.get(), 2 * kLen, rnic::kAccessAll);

  // 3. Both clients fire at t=0. Each serializes its own TX link in
  //    parallel; the server's RX link takes them back to back.
  verbs::PostSendNow(q1, verbs::MakeWrite(m1.addr, kLen, m1.lkey, ms.addr,
                                          ms.rkey));
  verbs::PostSendNow(q2, verbs::MakeWrite(m2.addr, kLen, m2.lkey,
                                          ms.addr + kLen, ms.rkey));
  verbs::Cqe cqe;
  verbs::AwaitCqe(sim, c1, q1->send_cq, &cqe);
  const double t1 = sim::ToMicros(cqe.completed_at);
  verbs::AwaitCqe(sim, c2, q2->send_cq, &cqe);
  const double t2 = sim::ToMicros(cqe.completed_at);
  std::printf("client1 64 KiB write completed at %8.2f us\n", t1);
  std::printf("client2 64 KiB write completed at %8.2f us (queued behind "
              "client1 on the server link)\n", t2);

  const sim::Nanos window = sim.now();
  std::printf("server RX utilisation: %.0f%%  (two back-to-back 21 us "
              "transfers inside a ~73 us run)\n",
              100.0 * fabric.RxUtilisation(server.fabric_endpoint(0), window));
  std::printf("gap between completions: %.2f us (expect ~one 64 KiB "
              "serialization, ~21 us)\n", t2 - t1);
  return (t2 - t1) > 10.0 ? 0 : 1;
}
