// Lossy-transport quickstart: one connection, a packet-eating wire, and
// go-back-N recovery.
//
//   $ ./examples/lossy_transport
//
// Walks through:
//   1. building a sim::Transport over a fabric and connecting QPs with
//      ConnectOverTransport (MTU packets + PSN sequencing + retransmission)
//   2. a clean 64 KiB write — segmentation and ACK coalescing only
//   3. the same write with the loss injector eating packets — the
//      completion arrives late but the data arrives exactly once, and the
//      transport counters show what the recovery cost
#include <cstdio>
#include <cstring>
#include <memory>

#include "rnic/device.h"
#include "sim/fabric.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

struct Run {
  double complete_us = 0;
  bool data_ok = false;
  sim::TransportCounters counters;
};

Run WriteOnce(double loss) {
  sim::Simulator sim;
  sim::Fabric fabric;
  sim::TransportConfig tcfg;
  tcfg.mtu = 4096;
  tcfg.loss = loss;  // every link drops packets with this probability
  tcfg.rto = 50'000;
  sim::Transport transport(sim, fabric, tcfg);

  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  const sim::LinkSpec link{25.0, 125};
  server.AttachPort(0, fabric, link);
  client.AttachPort(0, fabric, link);

  auto make_qp = [](rnic::RnicDevice& dev) {
    rnic::QpConfig cfg;
    cfg.send_cq = dev.CreateCq();
    cfg.recv_cq = dev.CreateCq();
    return dev.CreateQp(cfg);
  };
  rnic::QueuePair* cq = make_qp(client);
  rnic::QueuePair* sq = make_qp(server);
  rnic::ConnectOverTransport(cq, sq, transport);

  constexpr std::size_t kLen = 64 << 10;  // 16 packets at mtu 4096
  auto src = std::make_unique<std::byte[]>(kLen);
  auto dst = std::make_unique<std::byte[]>(kLen);
  std::memset(src.get(), 0x42, kLen);
  const auto ms = client.pd().Register(src.get(), kLen, rnic::kAccessAll);
  const auto md = server.pd().Register(dst.get(), kLen, rnic::kAccessAll);

  verbs::PostSendNow(cq, verbs::MakeWrite(ms.addr, kLen, ms.lkey, md.addr,
                                          md.rkey));
  verbs::Cqe cqe;
  verbs::AwaitCqe(sim, client, cq->send_cq, &cqe);

  Run r;
  r.complete_us = sim::ToMicros(cqe.completed_at);
  r.data_ok = cqe.status == rnic::WcStatus::kSuccess &&
              std::memcmp(src.get(), dst.get(), kLen) == 0;
  r.counters = transport.counters();
  return r;
}

}  // namespace

int main() {
  std::printf("64 KiB RDMA WRITE over the packetized transport "
              "(mtu 4096 -> 16 packets, 25 Gbps links)\n\n");
  std::printf("  %8s %12s %8s %10s %10s %10s\n", "loss", "complete us",
              "data ok", "packets", "rexmits", "timeouts");
  bool ok = true;
  double clean_us = 0;
  for (double loss : {0.0, 0.05, 0.20}) {
    const Run r = WriteOnce(loss);
    if (loss == 0.0) clean_us = r.complete_us;
    ok = ok && r.data_ok;
    std::printf("  %7.0f%% %12.2f %8s %10llu %10llu %10llu\n", 100.0 * loss,
                r.complete_us, r.data_ok ? "yes" : "NO",
                static_cast<unsigned long long>(r.counters.data_packets),
                static_cast<unsigned long long>(r.counters.retransmits),
                static_cast<unsigned long long>(r.counters.timeouts));
    if (loss > 0.0) {
      ok = ok && r.complete_us > clean_us && r.counters.PacketsLost() > 0;
    }
  }
  std::printf("\nEvery run lands the same bytes exactly once; loss only "
              "costs time (go-back-N retransmission + RTO tails).\n");
  return ok ? 0 : 1;
}
