// Lossy-transport quickstart: one connection, a packet-eating wire, and
// loss recovery in either transport mode.
//
//   $ ./examples/lossy_transport               # go-back-N (the default)
//   $ ./examples/lossy_transport --mode sr     # selective repeat + SACK
//
// Walks through:
//   1. building a sim::Transport over a fabric and connecting QPs with
//      ConnectOverTransport (MTU packets + PSN sequencing + retransmission)
//   2. a clean 64 KiB write — segmentation and ACK coalescing only
//   3. the same write with the loss injector eating packets — the
//      completion arrives late but the data arrives exactly once, and the
//      transport counters show what the recovery cost (under --mode sr the
//      sack rtx column shows resends targeted at the missing PSN ranges
//      instead of window rewinds)
//   4. a stalled receiver: a SEND arrives before the responder is ready,
//      bounces as RNR NAKs, and lands once the requester's backed-off
//      retries outlast the stall — the counter trail shows each round
#include <cstdio>
#include <cstring>
#include <memory>

#include "rnic/device.h"
#include "sim/fabric.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

struct Bed {
  sim::Simulator sim;
  sim::Fabric fabric;
  std::unique_ptr<sim::Transport> transport;
  std::unique_ptr<rnic::RnicDevice> server;
  std::unique_ptr<rnic::RnicDevice> client;
  rnic::QueuePair* cq = nullptr;  // client side
  rnic::QueuePair* sq = nullptr;  // server side

  explicit Bed(const sim::TransportConfig& tcfg) {
    transport = std::make_unique<sim::Transport>(sim, fabric, tcfg);
    server = std::make_unique<rnic::RnicDevice>(
        sim, rnic::NicConfig::ConnectX5(), rnic::Calibration{}, "server");
    client = std::make_unique<rnic::RnicDevice>(
        sim, rnic::NicConfig::ConnectX5(), rnic::Calibration{}, "client");
    const sim::LinkSpec link{25.0, 125};
    server->AttachPort(0, fabric, link);
    client->AttachPort(0, fabric, link);
    auto make_qp = [](rnic::RnicDevice& dev) {
      rnic::QpConfig cfg;
      cfg.send_cq = dev.CreateCq();
      cfg.recv_cq = dev.CreateCq();
      return dev.CreateQp(cfg);
    };
    cq = make_qp(*client);
    sq = make_qp(*server);
    rnic::ConnectOverTransport(cq, sq, *transport);
  }
};

struct Run {
  double complete_us = 0;
  bool data_ok = false;
  sim::TransportCounters counters;
};

Run WriteOnce(double loss, sim::TransportMode mode) {
  sim::TransportConfig tcfg;
  tcfg.mtu = 4096;
  tcfg.loss = loss;  // every link drops packets with this probability
  tcfg.rto = 50'000;
  tcfg.mode = mode;
  Bed bed(tcfg);

  constexpr std::size_t kLen = 64 << 10;  // 16 packets at mtu 4096
  auto src = std::make_unique<std::byte[]>(kLen);
  auto dst = std::make_unique<std::byte[]>(kLen);
  std::memset(src.get(), 0x42, kLen);
  const auto ms = bed.client->pd().Register(src.get(), kLen, rnic::kAccessAll);
  const auto md = bed.server->pd().Register(dst.get(), kLen, rnic::kAccessAll);

  verbs::PostSendNow(bed.cq, verbs::MakeWrite(ms.addr, kLen, ms.lkey, md.addr,
                                              md.rkey));
  verbs::Cqe cqe;
  verbs::AwaitCqe(bed.sim, *bed.client, bed.cq->send_cq, &cqe);

  Run r;
  r.complete_us = sim::ToMicros(cqe.completed_at);
  r.data_ok = cqe.status == rnic::WcStatus::kSuccess &&
              std::memcmp(src.get(), dst.get(), kLen) == 0;
  r.counters = bed.transport->counters();
  return r;
}

// A SEND into a responder whose RECV processing is stalled: the transport
// bounces it with RNR NAKs and the requester backs off 4096ns << min_rnr_timer
// (doubling each consecutive NAK) until the receiver comes back.
bool StalledReceiverDemo(sim::TransportMode mode) {
  sim::TransportConfig tcfg;
  tcfg.mtu = 4096;
  tcfg.mode = mode;
  tcfg.rnr_retry_count = 7;   // budget: consecutive NAKs before RNR_RETRY_EXC
  tcfg.min_rnr_timer = 4;     // first backoff 4096ns << 4 = 65.5 us
  Bed bed(tcfg);

  constexpr std::size_t kLen = 1024;
  auto src = std::make_unique<std::byte[]>(kLen);
  auto dst = std::make_unique<std::byte[]>(kLen);
  std::memset(src.get(), 0x5a, kLen);
  const auto ms = bed.client->pd().Register(src.get(), kLen, rnic::kAccessAll);
  const auto md = bed.server->pd().Register(dst.get(), kLen, rnic::kAccessAll);

  verbs::RecvWr rwr;
  rwr.local_addr = md.addr;
  rwr.length = kLen;
  rwr.lkey = md.lkey;
  verbs::PostRecv(bed.sq, rwr);
  // Fault injection: the next 2 inbound deliveries find the responder not
  // ready even though the RECV is posted.
  bed.server->StallRecvsFor(bed.sq, 2);

  verbs::PostSendNow(bed.cq, verbs::MakeSend(ms.addr, kLen, ms.lkey));
  verbs::Cqe cqe;
  verbs::AwaitCqe(bed.sim, *bed.client, bed.cq->send_cq, &cqe);

  const auto c = bed.transport->counters();
  std::printf("  stalled for 2 deliveries, rnr budget 7, min_rnr_timer 4:\n");
  std::printf("  %12s %12s %12s %12s %12s\n", "rnr naks", "backoffs",
              "rexmits", "complete us", "status");
  std::printf("  %12llu %12llu %12llu %12.2f %12s\n",
              static_cast<unsigned long long>(c.rnr_naks),
              static_cast<unsigned long long>(c.rnr_backoffs),
              static_cast<unsigned long long>(c.retransmits),
              sim::ToMicros(cqe.completed_at),
              cqe.status == rnic::WcStatus::kSuccess ? "ok" : "ERROR");
  const bool landed = cqe.status == rnic::WcStatus::kSuccess &&
                      std::memcmp(src.get(), dst.get(), kLen) == 0;
  return landed && c.rnr_naks == 2 && c.rnr_backoffs == 2;
}

}  // namespace

int main(int argc, char** argv) {
  sim::TransportMode mode = sim::TransportMode::kGoBackN;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = std::strcmp(argv[++i], "sr") == 0
                 ? sim::TransportMode::kSelectiveRepeat
                 : sim::TransportMode::kGoBackN;
    }
  }
  const char* mode_name =
      mode == sim::TransportMode::kSelectiveRepeat ? "sr" : "gbn";

  std::printf("64 KiB RDMA WRITE over the packetized transport "
              "(mtu 4096 -> 16 packets, 25 Gbps links, mode %s)\n\n",
              mode_name);
  std::printf("  %8s %12s %8s %10s %10s %10s %10s\n", "loss", "complete us",
              "data ok", "packets", "rexmits", "sack rtx", "timeouts");
  bool ok = true;
  double clean_us = 0;
  for (double loss : {0.0, 0.05, 0.20}) {
    const Run r = WriteOnce(loss, mode);
    if (loss == 0.0) clean_us = r.complete_us;
    ok = ok && r.data_ok;
    std::printf("  %7.0f%% %12.2f %8s %10llu %10llu %10llu %10llu\n",
                100.0 * loss, r.complete_us, r.data_ok ? "yes" : "NO",
                static_cast<unsigned long long>(r.counters.data_packets),
                static_cast<unsigned long long>(r.counters.retransmits),
                static_cast<unsigned long long>(r.counters.sack_retransmits),
                static_cast<unsigned long long>(r.counters.timeouts));
    if (loss > 0.0) {
      ok = ok && r.complete_us > clean_us && r.counters.PacketsLost() > 0;
    }
  }
  std::printf("\nEvery run lands the same bytes exactly once; loss only "
              "costs time (%s recovery + RTO tails).\n\n",
              mode == sim::TransportMode::kSelectiveRepeat
                  ? "SACK-targeted retransmission"
                  : "go-back-N retransmission");

  std::printf("Receiver-not-ready: SEND vs a stalled responder\n");
  ok = StalledReceiverDemo(mode) && ok;
  std::printf("\nThe SEND bounced twice (one RNR NAK per stalled delivery), "
              "backed off 65.5 then 131 us,\nand landed on the third try — "
              "with budget left from rnr_retry_count.\n");
  return ok ? 0 : 1;
}
