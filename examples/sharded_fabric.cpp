// Sharded parallel simulation: 8 NICs spread over 4 event domains.
//
// Four client/server pairs attach to one switch fabric; each pair's client
// sits on a different shard from its server, so every WRITE crosses a shard
// boundary through the conservative-sync mailbox (docs/PARSIM.md). The
// fabric's one-way link latency becomes the coordinator's lookahead floor
// automatically at AttachPort time — no manual tuning.
//
// The run prints per-shard event counts and the coordinator's round and
// mailbox statistics, then repeats itself to show that a same-config rerun
// is bit-stable even though shards >= 2 executes on real threads.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "rnic/device.h"
#include "sim/fabric.h"
#include "sim/sharded.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

struct RunStats {
  sim::Nanos end = 0;
  std::uint64_t events = 0;
  std::uint64_t mailbox_sends = 0;
  std::uint64_t rounds = 0;
  std::vector<std::uint64_t> per_shard;
};

RunStats RunOnce(bool print) {
  constexpr int kShards = 4;
  constexpr int kPairs = 4;  // 8 NICs total
  sim::ShardedSimulator ssim(kShards);
  sim::Fabric fabric(/*switch_latency=*/50);

  struct Pair {
    std::unique_ptr<rnic::RnicDevice> client;
    std::unique_ptr<rnic::RnicDevice> server;
    std::unique_ptr<std::byte[]> src;
    std::unique_ptr<std::byte[]> dst;
    rnic::MemoryRegion smr{}, dmr{};
    rnic::QueuePair* cqp = nullptr;
  };
  std::vector<Pair> pairs(kPairs);
  for (int i = 0; i < kPairs; ++i) {
    Pair& p = pairs[static_cast<std::size_t>(i)];
    // Client i on shard i, its server on shard (i+1) % 4: every pair's
    // traffic is cross-shard.
    p.client = std::make_unique<rnic::RnicDevice>(
        ssim.shard(i), rnic::NicConfig::ConnectX5(), rnic::Calibration{},
        "client" + std::to_string(i));
    p.server = std::make_unique<rnic::RnicDevice>(
        ssim.shard((i + 1) % kShards), rnic::NicConfig::ConnectX5(),
        rnic::Calibration{}, "server" + std::to_string(i));
    p.client->AttachPort(0, fabric, {25.0, 125});
    p.server->AttachPort(0, fabric, {25.0, 125});

    p.src = std::make_unique<std::byte[]>(4096);
    p.dst = std::make_unique<std::byte[]>(4096);
    p.smr = p.client->pd().Register(p.src.get(), 4096, rnic::kAccessAll);
    p.dmr = p.server->pd().Register(p.dst.get(), 4096, rnic::kAccessAll);

    rnic::QpConfig cc;
    cc.send_cq = p.client->CreateCq();
    cc.recv_cq = p.client->CreateCq();
    p.cqp = p.client->CreateQp(cc);
    rnic::QpConfig sc;
    sc.send_cq = p.server->CreateCq();
    sc.recv_cq = p.server->CreateCq();
    rnic::QueuePair* sqp = p.server->CreateQp(sc);
    rnic::ConnectOverFabric(p.cqp, sqp);

    rnic::dma::WriteU64(p.smr.addr, 0x1000 + static_cast<std::uint64_t>(i));
    for (int n = 0; n < 16; ++n) {
      verbs::PostSendNow(p.cqp, verbs::MakeWrite(p.smr.addr, 256, p.smr.lkey,
                                                 p.dmr.addr, p.dmr.rkey));
    }
  }

  ssim.Run();

  RunStats st;
  st.end = ssim.now();
  st.events = ssim.events_processed();
  st.mailbox_sends = ssim.cross_shard_sends();
  st.rounds = ssim.rounds();
  for (int s = 0; s < kShards; ++s) {
    st.per_shard.push_back(ssim.shard(s).events_processed());
  }

  if (print) {
    std::printf("8 NICs (4 client/server pairs) on %d shards, 16 x 256B "
                "WRITEs per pair:\n\n", kShards);
    for (int s = 0; s < kShards; ++s) {
      std::printf("  shard %d: %6llu events  (lookahead %lld ns)\n", s,
                  static_cast<unsigned long long>(st.per_shard[s]),
                  static_cast<long long>(ssim.lookahead()));
    }
    std::printf("\n  coordinator: %llu sync rounds, %llu cross-shard "
                "messages\n",
                static_cast<unsigned long long>(st.rounds),
                static_cast<unsigned long long>(st.mailbox_sends));
    std::printf("  simulated end %.2f us, %llu total events\n",
                sim::ToMicros(st.end),
                static_cast<unsigned long long>(st.events));
    for (int i = 0; i < kPairs; ++i) {
      const Pair& p = pairs[static_cast<std::size_t>(i)];
      std::printf("  pair %d landed 0x%llx at the server\n", i,
                  static_cast<unsigned long long>(
                      rnic::dma::ReadU64(p.dmr.addr)));
    }
  }
  return st;
}

}  // namespace

int main() {
  const RunStats a = RunOnce(/*print=*/true);
  const RunStats b = RunOnce(/*print=*/false);
  const bool stable = a.end == b.end && a.events == b.events &&
                      a.mailbox_sends == b.mailbox_sends &&
                      a.rounds == b.rounds && a.per_shard == b.per_shard;
  std::printf("\nrerun bit-stable: %s\n", stable ? "yes" : "NO");
  return stable ? 0 : 1;
}
